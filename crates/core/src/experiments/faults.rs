//! The `faults` experiment family: TCP under pathological path behavior.
//!
//! The paper's WAN results (Table 1, the 2.38 Gb/s record over 10,037 km)
//! rest on TCP surviving what real transcontinental circuits do — bursty
//! correlated loss, reordering, and outright outages — not just the clean
//! congestion drops of the buffer sweeps. This family drives the
//! [`tengig_net::impair`] subsystem through the scaled WAN lab:
//!
//! * [`burst_sweep_report`] — fixed mean loss, growing Gilbert–Elliott
//!   burst length: goodput degrades monotonically because a burst longer
//!   than the window defeats fast-retransmit/NewReno recovery and forces
//!   RTO backoff (each timeout retransmission probes the *same* bad
//!   state, so long bursts compound).
//! * [`flap_recovery_sweep_report`] — a scripted carrier outage at fixed
//!   sim time, swept over RTT: recovery time after the carrier returns
//!   grows with RTT (the Table 1 trend) because both the RTO estimate and
//!   the window refill are RTT-clocked.
//! * [`chaos_campaign`] — N seeded random impairment cocktails run to
//!   completion with the sanitizer and TCP invariants armed; every
//!   failure carries the exact seed (and CLI line, via `tengig-chaos`)
//!   that reproduces it.
//!
//! Determinism: every scenario's impairment pattern derives from the
//! sweep's master seed through `SimRng::scenario_seed`, so reports are
//! byte-identical across 1/4 runner threads.

use crate::config::HostConfig;
use crate::experiments::wan::wan_host;
use crate::lab::{self, App, Lab, LabEngine};
use crate::report::{Json, SweepReport};
use crate::sweep::{scenarios, SweepRunner};
use std::panic::{catch_unwind, AssertUnwindSafe};
use tengig_net::{GilbertElliott, Hop, ImpairmentSchedule, Impairments, Path, Reorder, WanSpec};
use tengig_nic::NicSpec;
use tengig_sim::{rate_of, Bandwidth, Engine, Nanos, Sanitizer, SimRng};
use tengig_tcp::Sysctls;
use tengig_tools::{NttcpReceiver, NttcpSender};

/// A [`WanSpec`] scaled to a target round-trip time, keeping the record
/// run's 30/70 Sunnyvale–Chicago/Chicago–Geneva propagation split and its
/// OC-192 → OC-48 rate structure. Fixed per-hop latencies (~130 µs round
/// trip) ride on top, so the realized RTT is `rtt` plus that small tax.
pub fn scaled_wan(rtt: Nanos, bottleneck_buffer: u64) -> WanSpec {
    let one_way = rtt / 2;
    WanSpec {
        prop_svl_chi: Nanos(one_way.as_nanos() * 3 / 10),
        prop_chi_gva: Nanos(one_way.as_nanos() * 7 / 10),
        bottleneck_buffer,
        ..WanSpec::record_run()
    }
}

/// Build the faults lab: the scaled WAN with impairments on the forward
/// (data) direction only — the reverse (ACK) path is clean, so measured
/// degradation is attributable to the data-path impairment under study.
pub fn faults_lab(wan: &WanSpec, buffer: Option<u64>, seed: u64) -> (Lab, LabEngine) {
    faults_lab_tuned(wan, buffer, seed, &|s| s)
}

/// [`faults_lab`] with a sysctl override hook, applied to the WAN-tuned
/// defaults on both hosts. Tests use it to pin down which knob caused a
/// behavioral change (e.g. the RTO ceiling) by re-running an experiment
/// with exactly one knob moved.
pub fn faults_lab_tuned(
    wan: &WanSpec,
    buffer: Option<u64>,
    seed: u64,
    tweak: &dyn Fn(Sysctls) -> Sysctls,
) -> (Lab, LabEngine) {
    let mut cfg = wan_host(wan, buffer);
    cfg.sysctls = tweak(cfg.sysctls);
    let clean = WanSpec {
        impair: Impairments::none(),
        ..*wan
    };
    let mut lab = Lab::new();
    let svl = lab.add_host(cfg);
    let gva = lab.add_host(cfg);
    let mut rng = SimRng::seeded(seed);
    let fwd = lab.add_link(&wan.forward_path(), rng.fork("fwd"));
    let rev = lab.add_link(&clean.reverse_path(), rng.fork("rev"));
    // Effectively endless stream: runs are window-measured.
    let payload = cfg.sysctls.mss();
    let count = 100_000_000;
    lab.add_flow(
        svl,
        gva,
        vec![fwd],
        vec![rev],
        App::Nttcp {
            tx: NttcpSender::new(payload, count),
            rx: NttcpReceiver::new(payload * count),
        },
    );
    let mut eng = Engine::new();
    eng.event_limit = 2_000_000_000;
    lab::install_default_sanitizer(&mut lab, &mut eng, seed);
    (lab, eng)
}

/// Result of one impaired WAN run.
#[derive(Debug, Clone, Copy)]
pub struct FaultResult {
    /// Goodput over the measurement window, Gb/s.
    pub gbps: f64,
    /// Sender retransmissions (fast + timeout).
    pub retransmits: u64,
    /// Sender RTO firings.
    pub timeouts: u64,
    /// Sender fast retransmits.
    pub fast_retransmits: u64,
    /// Frames eaten by the impairment layer on the data path.
    pub impair_drops: u64,
    /// All drops on the data path (impairment + congestion).
    pub drops: u64,
}

/// RTT ladder used by the flap-recovery sweep (scaled-down Table 1). The
/// rungs sit above the 200 ms minimum-RTO floor's shadow: below ~100 ms
/// the floor dominates the retransmission clock and flattens the trend.
pub const FLAP_RTTS: [Nanos; 3] = [
    Nanos::from_millis(100),
    Nanos::from_millis(200),
    Nanos::from_millis(400),
];

/// Default burst-length grid (frames) for [`burst_sweep_report`].
///
/// The grid brackets the flow's ~21-frame window (256 KB socket buffer),
/// because that is where burst *shape* changes the recovery mechanism:
///
/// * **8** — bursts are absorbed by the in-flight window; the ACK-clocked
///   refill keeps pumping frames through the chain until it exits, so
///   recovery stays on the duplicate-ACK fast path (a handful of
///   timeouts over a whole run).
/// * **16** — bursts reach the window's size; often too few survivors
///   remain to supply three duplicate ACKs, so recovery falls to the
///   RTO clock (dozens of timeouts).
/// * **32** — bursts outlast the window *and* its refill, and the
///   frame-clocked chain is still bad when the post-RTO retransmission
///   probes it: each dead probe doubles the backoff, and the flow
///   eventually wedges for the rest of the run.
///
/// Grids far below the window (1 → 4) would show the *opposite* trend:
/// at fixed mean loss, clumping losses into fewer events is cheaper for
/// AIMD as long as each event stays dup-ACK-recoverable (the Mathis
/// √(1/p_event) effect). Grids far above (64+) invert again because the
/// first wedge censors the run and bigger bursts are rarer. The
/// interesting — and monotone — regime is the window crossing.
pub const BURST_LENGTHS: [f64; 3] = [8.0, 16.0, 32.0];

fn windowed_run(
    wan: &WanSpec,
    buffer: Option<u64>,
    warmup: Nanos,
    window: Nanos,
    seed: u64,
) -> FaultResult {
    let (mut lab, mut eng) = faults_lab(wan, buffer, seed);
    lab::kick(&mut lab, &mut eng);
    eng.advance_to(&mut lab, warmup);
    let received = |lab: &Lab| match &lab.flows[0].app {
        App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let b0 = received(&lab);
    eng.advance_to(&mut lab, warmup + window);
    // Windowed run: frames are still in flight, so no drain check.
    lab::check_sanitizer(&lab, &mut eng, false);
    let b1 = received(&lab);
    let conn = &lab.flows[0].conns[0];
    FaultResult {
        gbps: rate_of(b1 - b0, window).gbps(),
        retransmits: conn.stats.retransmits,
        timeouts: conn.cc.timeouts,
        fast_retransmits: conn.cc.fast_retransmits,
        impair_drops: lab.links[0].impair_drops(),
        drops: lab.links[0].total_drops(),
    }
}

/// Sweep Gilbert–Elliott burst length at fixed mean loss on a 20 ms-RTT
/// scaled WAN and report goodput per point.
///
/// The socket buffer is held small (256 KB ≈ 21 jumbo frames of window)
/// so the flow never congests the bottleneck: every loss in the run is
/// the burst chain's doing, and the goodput column isolates how much
/// *shape* (not amount) of loss costs. Once bursts reach the window's
/// size they defeat dup-ACK recovery and push the sender into RTO
/// backoff against the still-bad chain, so goodput falls monotonically
/// down the [`BURST_LENGTHS`] grid.
pub fn burst_sweep_report(
    mean_loss: f64,
    burst_lens: &[f64],
    warmup: Nanos,
    window: Nanos,
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<FaultResult>, SweepReport) {
    let wan = scaled_wan(Nanos::from_millis(20), 64 << 20);
    // 256 KB socket buffer → ~21-frame usable window, far below the
    // OC-48 BDP: the flow never congests the bottleneck, so every loss
    // in the run belongs to the burst chain, and the window is small
    // enough that the grid's larger bursts swallow it whole (see
    // [`BURST_LENGTHS`]).
    let buffer = Some(256 << 10);
    let grid = scenarios(master_seed, burst_lens.iter().copied(), |b| {
        format!("mean_loss={mean_loss}/burst={b}")
    });
    let results = runner
        .run(&grid, |sc| {
            let imp = Impairments::none().with_burst(GilbertElliott::bursty(mean_loss, sc.input));
            let spec = wan.with_impairments(imp);
            windowed_run(&spec, buffer, warmup, window, sc.seed)
        })
        .expect("burst sweep scenario panicked");
    let mut report = SweepReport::new("faults/burst_sweep", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("mean_loss".to_string(), Json::F64(mean_loss)),
                ("burst_len".to_string(), Json::F64(sc.input)),
                ("gbps".to_string(), Json::F64(r.gbps)),
                ("retransmits".to_string(), Json::U64(r.retransmits)),
                ("timeouts".to_string(), Json::U64(r.timeouts)),
                (
                    "fast_retransmits".to_string(),
                    Json::U64(r.fast_retransmits),
                ),
                ("impair_drops".to_string(), Json::U64(r.impair_drops)),
            ],
        );
    }
    (results, report)
}

/// Result of one flap-recovery run.
#[derive(Debug, Clone, Copy)]
pub struct FlapRecovery {
    /// The scenario's base RTT.
    pub rtt: Nanos,
    /// Time from carrier restoration until the sender's `snd_una` passed
    /// everything it had sent when the carrier returned — i.e. until the
    /// outage's losses were fully repaired.
    pub recovery: Nanos,
    /// RTO firings over the whole run.
    pub timeouts: u64,
    /// Retransmissions over the whole run.
    pub retransmits: u64,
    /// Frames eaten by the scripted outage.
    pub flap_drops: u64,
}

/// Sweep a scripted carrier outage over RTT and measure how long the
/// sender needs to repair the damage once the carrier returns.
///
/// Per point: warm the flow to steady state, drop the carrier for
/// `2·RTT + 50 ms` (long enough that the whole window in flight — and the
/// first retransmissions — die), then clock how long until `snd_una`
/// passes the pre-restoration `snd_nxt`. Both the RTO estimate and the
/// retransmission clock scale with RTT, so recovery grows monotonically
/// with RTT — the paper's Table 1 trend.
pub fn flap_recovery_sweep_report(
    rtts: &[Nanos],
    master_seed: u64,
    runner: SweepRunner,
) -> (Vec<FlapRecovery>, SweepReport) {
    let grid = scenarios(master_seed, rtts.iter().copied(), |rtt| {
        format!("rtt_ms={}", rtt.as_nanos() / 1_000_000)
    });
    let results = runner
        .run(&grid, |sc| flap_recovery_run(sc.input, sc.seed))
        .expect("flap sweep scenario panicked");
    let mut report = SweepReport::new("faults/flap_recovery_sweep", master_seed);
    for (sc, r) in grid.iter().zip(&results) {
        report.push_row(
            sc.index,
            sc.label.clone(),
            sc.seed,
            vec![
                ("rtt_ns".to_string(), Json::U64(r.rtt.as_nanos())),
                ("recovery_ns".to_string(), Json::U64(r.recovery.as_nanos())),
                ("timeouts".to_string(), Json::U64(r.timeouts)),
                ("retransmits".to_string(), Json::U64(r.retransmits)),
                ("flap_drops".to_string(), Json::U64(r.flap_drops)),
            ],
        );
    }
    (results, report)
}

fn flap_recovery_run(rtt: Nanos, seed: u64) -> FlapRecovery {
    flap_recovery_run_tuned(rtt, seed, &|s| s)
}

/// One flap-recovery point with a sysctl override hook (see
/// [`faults_lab_tuned`]). The sweep always runs the stock WAN tuning;
/// tests use this to show the ladder is invariant to knobs that are not
/// supposed to bind on it — notably the 60 s RTO ceiling.
pub fn flap_recovery_run_tuned(
    rtt: Nanos,
    seed: u64,
    tweak: &dyn Fn(Sysctls) -> Sysctls,
) -> FlapRecovery {
    // 256 KB socket buffer: a fixed ~21-frame window at every RTT, so
    // each scenario loses the *same* amount of in-flight data to the
    // outage and the recovery clock — RTO estimate plus the per-hole
    // repair round-trips, both RTT-proportional — is the only thing the
    // sweep varies. (A whole-window loss yields no duplicate ACKs, so
    // every hole is repaired on the RTO clock; a big window would make
    // the 400 ms rung take minutes of simulated time.)
    let buffer = Some(256 << 10);
    let warmup = Nanos::from_secs(1).max(rtt * 15);
    let outage_len = rtt * 2 + Nanos::from_millis(50);
    let sched = ImpairmentSchedule::none().with_outage(warmup, outage_len);
    let wan = scaled_wan(rtt, 64 << 20).with_impairments(Impairments::none().with_schedule(sched));
    let (mut lab, mut eng) = faults_lab_tuned(&wan, buffer, seed, tweak);
    lab::kick(&mut lab, &mut eng);
    let flap_end = warmup + outage_len;
    eng.advance_to(&mut lab, flap_end);
    // Everything sent up to carrier restoration: the recovery target.
    let mark = lab.flows[0].conns[0].snd_nxt();
    let step = Nanos::from_millis(1);
    let deadline = flap_end + Nanos::from_secs(120);
    let mut now = flap_end;
    while lab.flows[0].conns[0].snd_una() < mark && now < deadline {
        now += step;
        eng.advance_to(&mut lab, now);
    }
    lab::check_sanitizer(&lab, &mut eng, false);
    let conn = &lab.flows[0].conns[0];
    FlapRecovery {
        rtt,
        recovery: now - flap_end,
        timeouts: conn.cc.timeouts,
        retransmits: conn.stats.retransmits,
        flap_drops: lab.links[0]
            .hops
            .iter()
            .map(|h| h.impair.flap_drops.get())
            .sum(),
    }
}

// ---------------------------------------------------------------------
// chaos campaign
// ---------------------------------------------------------------------

/// One randomly drawn impairment cocktail — every field derives from the
/// scenario seed alone, so a spec (and the whole run behind it) is
/// reproducible from the seed.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Gilbert–Elliott mean loss on the bottleneck, `[0, 3%)`.
    pub mean_loss: f64,
    /// Mean burst length, `[1, 8)` frames.
    pub burst_len: f64,
    /// Reordering probability, `[0, 10%)`.
    pub reorder_p: f64,
    /// Maximum reordering delay, 50 µs – 1 ms.
    pub reorder_max: Nanos,
    /// Duplication probability, `[0, 2%)`.
    pub duplicate: f64,
    /// Corruption probability, `[0, 2%)`.
    pub corrupt: f64,
    /// Scripted outage start (sim time), if one was drawn.
    pub outage_at: Option<Nanos>,
    /// Scripted outage duration.
    pub outage_len: Nanos,
}

impl ChaosSpec {
    /// The composed impairment spec.
    pub fn impairments(&self) -> Impairments {
        let mut imp = Impairments::none()
            .with_burst(GilbertElliott::bursty(self.mean_loss, self.burst_len))
            .with_reorder(Reorder::new(
                self.reorder_p,
                Nanos::from_micros(10),
                self.reorder_max,
            ))
            .with_duplicate(self.duplicate)
            .with_corrupt(self.corrupt);
        if let Some(at) = self.outage_at {
            imp = imp.with_schedule(ImpairmentSchedule::none().with_outage(at, self.outage_len));
        }
        imp
    }
}

/// Draw a chaos scenario spec from a seed (pure function of the seed).
pub fn chaos_spec(seed: u64) -> ChaosSpec {
    let mut rng = SimRng::seeded(seed).fork("chaos-spec");
    let mean_loss = rng.uniform() * 0.03;
    let burst_len = 1.0 + rng.uniform() * 7.0;
    let reorder_p = rng.uniform() * 0.10;
    let reorder_max = Nanos::from_micros(rng.range(50, 1001));
    let duplicate = rng.uniform() * 0.02;
    let corrupt = rng.uniform() * 0.02;
    let (outage_at, outage_len) = if rng.chance(0.5) {
        (
            Some(Nanos::from_millis(rng.range(20, 81))),
            Nanos::from_millis(rng.range(5, 26)),
        )
    } else {
        (None, Nanos::from_millis(10))
    };
    ChaosSpec {
        mean_loss,
        burst_len,
        reorder_p,
        reorder_max,
        duplicate,
        corrupt,
        outage_at,
        outage_len,
    }
}

/// What a surviving chaos scenario measured.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOutcome {
    /// End-to-end goodput of the fixed transfer, Gb/s.
    pub gbps: f64,
    /// Total transfer duration.
    pub duration: Nanos,
    /// Sender retransmissions.
    pub retransmits: u64,
    /// Sender RTO firings.
    pub timeouts: u64,
    /// Impairment-layer drops on the data path.
    pub impair_drops: u64,
    /// Duplicate copies minted.
    pub dup_frames: u64,
    /// Frames delayed by reordering.
    pub reordered: u64,
    /// Corrupted frames discarded at the receiver's NIC.
    pub crc_drops: u64,
    /// Engine events executed.
    pub events: u64,
}

/// The chaos lab: a 10G host pair over a 1 Gb/s bottleneck hop carrying
/// the scenario's impairment cocktail (forward direction only), moving a
/// fixed 4 MB nttcp transfer to completion.
fn chaos_lab(spec: &ChaosSpec, seed: u64) -> (Lab, LabEngine) {
    let cfg = HostConfig {
        hw: tengig_hw::HostSpec::wan_endpoint(),
        nic: NicSpec::intel_pro_10gbe(),
        sysctls: Sysctls::wan_tuned(4 << 20),
    };
    let imp = spec.impairments();
    let bottleneck = |imp: Impairments| Path {
        hops: vec![
            Hop::wire(
                "chaos-uplink",
                Bandwidth::from_gbps(10),
                Nanos::from_micros(5),
            ),
            Hop::wire(
                "chaos-bottleneck",
                Bandwidth::from_gbps(1),
                Nanos::from_micros(200),
            )
            .with_buffer(256 << 10)
            .with_impairments(imp),
        ],
    };
    let mut lab = Lab::new();
    let a = lab.add_host(cfg);
    let b = lab.add_host(cfg);
    let mut rng = SimRng::seeded(seed);
    let fwd = lab.add_link(&bottleneck(imp), rng.fork("fwd"));
    let rev = lab.add_link(&bottleneck(Impairments::none()), rng.fork("rev"));
    let payload = cfg.sysctls.mss();
    let count = (4 << 20) / payload;
    lab.add_flow(
        a,
        b,
        vec![fwd],
        vec![rev],
        App::Nttcp {
            tx: NttcpSender::new(payload, count),
            rx: NttcpReceiver::new(payload * count),
        },
    );
    let mut eng = Engine::new();
    eng.event_limit = 50_000_000;
    // Chaos runs always arm the sanitizer and flight recorder — the whole
    // point is running pathological inputs with the invariants on,
    // regardless of the debug/release default.
    eng.install_sanitizer(Sanitizer::new(seed));
    lab.arm_flight_recorder(lab::FLIGHT_RING);
    (lab, eng)
}

/// Run one chaos scenario to completion under the sanitizer. Returns the
/// outcome, or the panic text if the scenario blew an invariant (or
/// `inject_failure` forced the failure path — used to prove the campaign's
/// seed-reproduction plumbing end to end).
pub fn chaos_run(seed: u64, inject_failure: bool) -> Result<ChaosOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let spec = chaos_spec(seed);
        let (mut lab, mut eng) = chaos_lab(&spec, seed);
        if inject_failure {
            panic!("injected chaos failure (seed {seed}) — repro-path self-test");
        }
        lab::kick(&mut lab, &mut eng);
        eng.run(&mut lab);
        assert!(
            lab.all_done(),
            "chaos scenario stalled: {} events executed without completing",
            eng.executed()
        );
        // Drained run: every injected byte must be delivered or accounted
        // as dropped, duplicates and corruption included.
        lab::check_sanitizer(&lab, &mut eng, true);
        let m = &lab.flows[0].meas;
        let (t0, t1) = (
            m.t_start.unwrap_or(Nanos::ZERO),
            m.t_done.unwrap_or(Nanos::ZERO),
        );
        let duration = t1.saturating_sub(t0);
        let bytes = match &lab.flows[0].app {
            App::Nttcp { rx, .. } => rx.received,
            _ => 0,
        };
        let conn = &lab.flows[0].conns[0];
        ChaosOutcome {
            gbps: if duration == Nanos::ZERO {
                0.0
            } else {
                rate_of(bytes, duration).gbps()
            },
            duration,
            retransmits: conn.stats.retransmits,
            timeouts: conn.cc.timeouts,
            impair_drops: lab.links[0].impair_drops(),
            dup_frames: lab.links[0].dup_frames(),
            reordered: lab.links[0].reordered_frames(),
            crc_drops: lab.hosts[1].rx_crc_drops,
            events: eng.executed(),
        }
    }))
    .map_err(|p| {
        if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// One campaign scenario's record: seed, spec, and survive/fail outcome.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The scenario seed — everything reproduces from this.
    pub seed: u64,
    /// Outcome: measurements, or the failure text.
    pub outcome: Result<ChaosOutcome, String>,
}

/// Run an N-scenario chaos campaign on the deterministic sweep runner.
///
/// `inject_failure` deliberately fails one scenario (by index) through
/// the same panic-capture path a real invariant violation would take —
/// the self-test that a printed seed actually reproduces its failure.
/// Failures never abort the campaign; they become rows.
pub fn chaos_campaign(
    n: usize,
    master_seed: u64,
    inject_failure: Option<usize>,
    runner: SweepRunner,
) -> (Vec<ChaosRow>, SweepReport) {
    let grid = scenarios(master_seed, 0..n, |i| format!("chaos-{i:03}"));
    let outcomes = runner
        .run(&grid, |sc| {
            chaos_run(sc.seed, inject_failure == Some(sc.index))
        })
        .expect("chaos_run captures panics; the sweep closure never panics");
    let mut rows = Vec::with_capacity(n);
    let mut report = SweepReport::new("faults/chaos_campaign", master_seed);
    for (sc, outcome) in grid.iter().zip(outcomes) {
        let spec = chaos_spec(sc.seed);
        let mut fields = vec![
            ("survived".to_string(), Json::Bool(outcome.is_ok())),
            ("mean_loss".to_string(), Json::F64(spec.mean_loss)),
            ("burst_len".to_string(), Json::F64(spec.burst_len)),
            ("reorder_p".to_string(), Json::F64(spec.reorder_p)),
            ("duplicate".to_string(), Json::F64(spec.duplicate)),
            ("corrupt".to_string(), Json::F64(spec.corrupt)),
            (
                "outage".to_string(),
                spec.outage_at
                    .map_or(Json::Null, |at| Json::U64(at.as_nanos())),
            ),
        ];
        match &outcome {
            Ok(o) => {
                fields.push(("gbps".to_string(), Json::F64(o.gbps)));
                fields.push(("retransmits".to_string(), Json::U64(o.retransmits)));
                fields.push(("timeouts".to_string(), Json::U64(o.timeouts)));
                fields.push(("impair_drops".to_string(), Json::U64(o.impair_drops)));
                fields.push(("dup_frames".to_string(), Json::U64(o.dup_frames)));
                fields.push(("reordered".to_string(), Json::U64(o.reordered)));
                fields.push(("crc_drops".to_string(), Json::U64(o.crc_drops)));
                fields.push(("failure".to_string(), Json::Null));
            }
            Err(e) => {
                // First line only: panic payloads embed full reports.
                let first = e.lines().next().unwrap_or("").to_string();
                fields.push(("failure".to_string(), Json::Str(first)));
            }
        }
        report.push_row(sc.index, sc.label.clone(), sc.seed, fields);
        rows.push(ChaosRow {
            index: sc.index,
            seed: sc.seed,
            outcome,
        });
    }
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_wan_hits_its_rtt() {
        let wan = scaled_wan(Nanos::from_millis(20), 64 << 20);
        let rtt = wan.rtt_small().as_millis_f64();
        assert!((19.5..21.5).contains(&rtt), "rtt {rtt} ms");
    }

    #[test]
    fn chaos_spec_is_a_pure_function_of_the_seed() {
        let a = chaos_spec(42);
        let b = chaos_spec(42);
        assert_eq!(a.mean_loss, b.mean_loss);
        assert_eq!(a.reorder_max, b.reorder_max);
        assert_eq!(a.outage_at, b.outage_at);
        let c = chaos_spec(43);
        assert_ne!(
            (a.mean_loss, a.reorder_max),
            (c.mean_loss, c.reorder_max),
            "different seeds must draw different cocktails"
        );
    }

    #[test]
    fn chaos_run_survives_and_reproduces() {
        let seed = SimRng::scenario_seed(2003, 0);
        let a = chaos_run(seed, false).expect("scenario must survive");
        let b = chaos_run(seed, false).expect("scenario must survive");
        assert_eq!(a.duration, b.duration, "chaos runs must be reproducible");
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.events, b.events);
        assert!(a.gbps > 0.0);
    }

    #[test]
    fn injected_failure_reports_and_reproduces() {
        let seed = SimRng::scenario_seed(7, 3);
        let e1 = chaos_run(seed, true).expect_err("injection must fail");
        let e2 = chaos_run(seed, true).expect_err("injection must fail");
        assert_eq!(e1, e2);
        assert!(e1.contains(&format!("seed {seed}")), "failure text: {e1}");
    }
}
