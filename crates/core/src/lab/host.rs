//! Per-host runtime state: the resource servers and cost arithmetic of one
//! machine in the laboratory.

use crate::config::HostConfig;
use std::collections::VecDeque;
use tengig_ethernet::{ETH_FCS, ETH_HEADER};
use tengig_hw::DiskModel;
use tengig_nic::Coalescer;
use tengig_sim::{FifoServer, Nanos, ServerBank, Stage, Tracer};
use tengig_tcp::Segment;

/// A frame sitting in a host's receive ring awaiting an interrupt.
#[derive(Debug, Clone)]
pub enum RxFrame {
    /// A TCP segment for a flow endpoint.
    Tcp {
        /// Flow index in the lab.
        flow: usize,
        /// Endpoint (0 or 1) the segment is addressed to.
        ep: usize,
        /// The segment.
        seg: Segment,
    },
    /// A raw datagram (pktgen traffic) — counted, not processed.
    Udp {
        /// Flow index.
        flow: usize,
        /// IP bytes.
        bytes: u64,
    },
}

/// Runtime state of one host.
#[derive(Debug)]
pub struct HostRt {
    /// Full configuration (hardware + NIC + sysctls).
    pub cfg: HostConfig,
    /// CPU bank (size = usable cores under the booted kernel).
    pub cpu: ServerBank,
    /// The shared memory bus.
    pub membus: FifoServer,
    /// The PCI-X segment the NIC sits on.
    pub pci: FifoServer,
    /// Receive-interrupt coalescing state.
    pub coalescer: Coalescer,
    /// Frames DMA-complete, awaiting the interrupt.
    pub rx_pending: VecDeque<RxFrame>,
    /// Corrupted frames the NIC's MAC discarded on a bad FCS (before any
    /// DMA), i.e. the receive side of the corruption impairment.
    pub rx_crc_drops: u64,
    /// MAGNET-style tracer for this host.
    pub tracer: Tracer,
    /// Disk bank, when this host is a storage endpoint of the
    /// disk→NIC→WAN→NIC→disk pipeline (see [`Lab::attach_disk`]).
    ///
    /// [`Lab::attach_disk`]: crate::lab::Lab::attach_disk
    pub disk: Option<DiskModel>,
}

impl HostRt {
    /// Instantiate runtime state for a configuration.
    pub fn new(cfg: HostConfig) -> Self {
        let cores = cfg.hw.cpu.usable_cores();
        HostRt {
            cfg,
            cpu: ServerBank::new("cpu", cores),
            membus: FifoServer::new("membus"),
            pci: FifoServer::new("pci-x"),
            coalescer: Coalescer::new(cfg.nic.rx_coalesce_delay, cfg.nic.rx_coalesce_max_frames),
            rx_pending: VecDeque::new(),
            rx_crc_drops: 0,
            tracer: Tracer::disabled(),
            disk: None,
        }
    }

    /// Typed probe point: record a pipeline-stage observation on this
    /// host's tracer. The disabled fast path is a single inlined bool
    /// test, so probes sprinkled through the hot pipeline cost nothing
    /// unless observability or the flight recorder is armed.
    #[inline]
    pub fn probe(&mut self, at: Nanos, stage: Stage, packet: u64, bytes: u64, cost: Nanos) {
        if self.tracer.is_enabled() {
            self.tracer.emit(at, stage, packet, bytes, cost);
        }
    }

    /// The CPU that services hardware interrupts (the 2.4 SMP kernel pins
    /// them all to CPU 0).
    pub fn irq_cpu(&self) -> usize {
        0
    }

    /// The CPU an application thread for `flow` runs on. The 2.4
    /// scheduler's wake affinity pulls a single reader onto the CPU its
    /// data (and the NIC interrupt) lives on — CPU 0 — which is exactly
    /// why the second CPU of an SMP box buys a single flow nothing while
    /// the SMP kernel's locking still taxes it. Additional concurrent
    /// flows spread across the remaining CPUs.
    pub fn app_cpu(&self, flow: usize) -> usize {
        flow % self.cpu.len()
    }

    /// Ethernet frame bytes for a segment (IP packet + header + FCS).
    pub fn frame_bytes(seg: &Segment) -> u64 {
        seg.ip_bytes() + ETH_HEADER + ETH_FCS
    }

    /// CPU cost of emitting a segment: stack traversal plus an optional
    /// software checksum. The user→skb copy is *not* here — it is paid at
    /// `write()` time (`copy_from_user` in `tcp_sendmsg`), pipelined ahead
    /// of the ACK clock; see [`HostRt::write_cpu_cost`].
    ///
    /// With TCP segmentation offload (§3.3: "TSO allows the transmitting
    /// system to use a large (64 KB) virtual MTU; the card then re-segments
    /// the payload"), one stack traversal covers a whole virtual segment,
    /// so the per-frame stack cost amortizes over the TSO batch.
    pub fn tx_cpu_cost(&self, seg: &Segment) -> Nanos {
        let cpu = &self.cfg.hw.cpu;
        if seg.is_pure_ack() {
            return cpu.stack_time(cpu.costs.tx_segment).scale(0.5);
        }
        let mut c = cpu.tx_segment_time(seg.ts.is_some());
        if self.cfg.nic.tso && seg.len > 0 {
            let batch = (self.cfg.nic.tso_max_bytes / seg.len).clamp(1, 44);
            c = c.scale(1.0 / batch as f64) + Nanos::from_nanos(200); // per-frame DMA setup
        }
        if !self.cfg.nic.tx_csum_offload {
            c += cpu.copy_time(seg.len); // checksum pass over the payload
        }
        c
    }

    /// CPU cost of receive-side stack processing for one segment
    /// (softirq; excludes the interrupt entry, which amortizes over the
    /// coalesced batch).
    pub fn rx_cpu_cost(&self, seg: &Segment) -> Nanos {
        let cpu = &self.cfg.hw.cpu;
        if seg.is_pure_ack() {
            return cpu.stack_time(cpu.costs.ack_process);
        }
        let mut c = cpu.rx_segment_time(seg.ts.is_some())
            + self.cfg.hw.alloc.alloc_cost(Self::frame_bytes(seg));
        if self.cfg.sysctls.napi {
            // §3.3: NAPI moves per-packet queueing out of the interrupt
            // context — "less time spent in an interrupt context and more
            // efficient processing of packets".
            c = c.saturating_sub(cpu.plain_time(Nanos::from_nanos(400)));
        }
        if !self.cfg.nic.rx_csum_offload {
            c += cpu.copy_time(seg.len);
        }
        c
    }

    /// CPU cost of an application read delivering `bytes` (syscall +
    /// wakeup + copy to user space).
    pub fn read_cpu_cost(&self, bytes: u64) -> Nanos {
        let cpu = &self.cfg.hw.cpu;
        cpu.plain_time(cpu.costs.syscall)
            + cpu.plain_time(cpu.costs.sched_wakeup)
            + cpu.copy_time(bytes)
    }

    /// CPU cost of an application write: syscall plus the user→skb copy of
    /// the written bytes (`copy_from_user`).
    pub fn write_cpu_cost(&self, bytes: u64) -> Nanos {
        let cpu = &self.cfg.hw.cpu;
        cpu.plain_time(cpu.costs.syscall) + cpu.copy_time(bytes)
    }

    /// Memory-bus occupancy of the write-time copy (read + write of the
    /// payload).
    pub fn write_bus_time(&self, bytes: u64) -> Nanos {
        self.cfg.hw.mem.bus_time(2 * bytes)
    }

    /// Memory-bus occupancy of emitting a segment: the NIC's DMA read of
    /// the frame (the write-time copy is charged separately).
    pub fn tx_bus_time(&self, seg: &Segment) -> Nanos {
        self.cfg.hw.mem.bus_time(Self::frame_bytes(seg))
    }

    /// Memory-bus occupancy for the DMA write of a received frame.
    pub fn rx_dma_bus_time(&self, frame_bytes: u64) -> Nanos {
        self.cfg.hw.mem.bus_time(frame_bytes)
    }

    /// Memory-bus occupancy of copying `bytes` to user space on read.
    pub fn read_bus_time(&self, bytes: u64) -> Nanos {
        self.cfg.hw.mem.bus_time(2 * bytes)
    }

    /// PCI-X occupancy for one frame.
    pub fn pci_time(&self, frame_bytes: u64) -> Nanos {
        self.cfg.hw.pci.packet_transfer_time(frame_bytes)
    }

    /// Hard-interrupt entry cost (per interrupt, not per frame).
    pub fn irq_cost(&self) -> Nanos {
        self.cfg.hw.cpu.plain_time(self.cfg.hw.cpu.costs.irq_entry)
    }

    /// Busy time delivered by the hottest CPU as of `now` — the basis of
    /// the `/proc/loadavg` figure.
    pub fn hottest_cpu_busy(&self, now: Nanos) -> Nanos {
        (0..self.cpu.len())
            .map(|i| {
                let s = self.cpu.server(i);
                s.busy_total().saturating_sub(s.backlog(now))
            })
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Total busy time ever *admitted* to the hottest CPU. Unlike
    /// [`HostRt::hottest_cpu_busy`] this is purely event-driven — it only
    /// changes when work is admitted, never as wall-of-sim time elapses —
    /// so a dormant grid shard's value is exactly frozen, which is what
    /// makes it safe to sample from grid-mode observability (see
    /// [`crate::lab::grid`] on merge invariance).
    pub fn hottest_cpu_busy_total(&self) -> Nanos {
        (0..self.cpu.len())
            .map(|i| self.cpu.server(i).busy_total())
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;
    use tengig_hw::KernelMode;
    use tengig_tcp::{Flags, Timestamps};

    fn data_seg(len: u64) -> Segment {
        Segment {
            seq: 0,
            len,
            ack: 0,
            wnd: 65535,
            flags: Flags {
                ack: true,
                psh: true,
                fin: false,
            },
            ts: Some(Timestamps {
                tsval: Nanos(1),
                tsecr: Nanos(0),
            }),
            retransmit: false,
        }
    }

    #[test]
    fn cpu_layout_follows_kernel_mode() {
        let smp = HostRt::new(LadderRung::Stock.pe2650_config(Mtu::STANDARD));
        assert_eq!(smp.cpu.len(), 2);
        assert_eq!(smp.irq_cpu(), 0);
        // A single flow's reader shares CPU 0 with the interrupts (wake
        // affinity); a second concurrent flow lands on CPU 1.
        assert_eq!(smp.app_cpu(0), 0);
        assert_eq!(smp.app_cpu(1), 1);
        let up = HostRt::new(LadderRung::Uniprocessor.pe2650_config(Mtu::STANDARD));
        assert_eq!(up.cpu.len(), 1);
        assert_eq!(up.app_cpu(3), 0);
        assert_eq!(up.cfg.hw.cpu.kernel, KernelMode::Uniprocessor);
    }

    #[test]
    fn rx_costs_exceed_tx_costs() {
        // The paper's premise: "the inherent complexity of the TCP receive
        // path (relative to the transmit path)".
        let h = HostRt::new(LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160));
        let seg = data_seg(8108);
        assert!(h.rx_cpu_cost(&seg) > Nanos::ZERO);
        assert!(h.tx_cpu_cost(&seg) > Nanos::ZERO);
        assert!(h.rx_cpu_cost(&seg) > h.tx_cpu_cost(&seg) / 2);
    }

    #[test]
    fn ack_costs_are_small() {
        let h = HostRt::new(LadderRung::Stock.pe2650_config(Mtu::STANDARD));
        let ack = Segment {
            len: 0,
            flags: Flags {
                ack: true,
                psh: false,
                fin: false,
            },
            ..data_seg(0)
        };
        assert!(h.rx_cpu_cost(&ack) < h.rx_cpu_cost(&data_seg(1448)));
        assert!(h.tx_cpu_cost(&ack) < h.tx_cpu_cost(&data_seg(1448)));
    }

    #[test]
    fn bus_times_scale_with_payload() {
        let h = HostRt::new(LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000));
        assert!(h.tx_bus_time(&data_seg(8948)) > h.tx_bus_time(&data_seg(1448)));
        assert!(h.read_bus_time(8948) > h.read_bus_time(1448));
    }

    #[test]
    fn frame_bytes_arithmetic() {
        let seg = data_seg(8948);
        // 8948 + 40 headers + 12 ts + 18 ethernet = 9018.
        assert_eq!(HostRt::frame_bytes(&seg), 9018);
    }
}
