//! The laboratory: hosts, links, flows, and the engine wiring that turns
//! sans-IO state-machine actions into scheduled, resource-charged events.
//!
//! The end-to-end pipeline for one data segment, exactly as §2-3 of the
//! paper describe the path:
//!
//! ```text
//! sender app write ─syscall─▶ TCP tx (CPU: stack+copy) ─▶ memory bus
//!   ─▶ PCI-X DMA (MMRBC bursts) ─▶ wire/switch/WAN (store-and-forward)
//!   ─▶ rx PCI-X DMA ─▶ memory bus ─▶ interrupt coalescer (5 µs default)
//!   ─▶ hard IRQ + TCP rx (CPU: stack+alloc) ─▶ app read (CPU: copy)
//! ```
//!
//! Every stage is a FIFO resource, so contention, batching, and queueing
//! delays emerge rather than being assumed.

pub mod grid;
pub mod host;

use crate::config::HostConfig;
pub use grid::{GridMsg, GridRt, GridShard};
pub use host::{HostRt, RxFrame};
use std::collections::VecDeque;
use tengig_hw::DiskModel;
use tengig_net::{Delivery, Path, PathState};
use tengig_nic::CoalesceAction;
use tengig_sim::{
    Engine, EventFire, EventId, FlightDump, Hist, MetricKind, Nanos, ObsConfig, Sanitizer, Scope,
    SimConfig, SimRng, Stage, Timelines, Tracer, ViolationKind,
};
use tengig_tcp::{Action, Segment, Sysctls, TcpConn, TimerKind};
use tengig_tools::{Iperf, NetPipe, NttcpReceiver, NttcpSender, PingPongSide, Pktgen};

/// The engine type every lab runs on: event payloads are the [`Ev`] enum,
/// stored inline in the engine's slab calendar, so steady-state scheduling
/// performs no allocation (the original engine boxed one closure per
/// event — one heap allocation per segment per pipeline stage).
pub type LabEngine = Engine<Lab, Ev>;

/// One scheduled laboratory event. Each variant carries only `Copy` data
/// (indices and the fixed-size [`Segment`] header model), so the whole
/// enum lives inline in the calendar slab.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Kick one flow's workload.
    StartFlow {
        /// Flow index.
        f: usize,
    },
    /// Transmit stage 2: CPU done, start the PCI-X DMA read.
    TxDma {
        /// Flow index.
        f: usize,
        /// Sending endpoint.
        ep: usize,
        /// The segment in flight.
        seg: Segment,
    },
    /// Transmit stage 3: DMA done, walk the link route.
    TxWire {
        /// Flow index.
        f: usize,
        /// Sending endpoint.
        ep: usize,
        /// The segment in flight.
        seg: Segment,
    },
    /// A frame fully arrived at the destination NIC.
    FrameArrival {
        /// Flow index.
        f: usize,
        /// Receiving endpoint.
        ep: usize,
        /// The segment in flight.
        seg: Segment,
        /// The frame was bit-corrupted en route; the MAC discards it on
        /// the bad FCS before DMA.
        corrupted: bool,
    },
    /// Receive DMA complete: enqueue for the coalescer.
    RxDmaDone {
        /// Flow index.
        f: usize,
        /// Receiving endpoint.
        ep: usize,
        /// The segment in flight.
        seg: Segment,
    },
    /// The interrupt-coalescing timer fired on a host.
    CoalesceTimer {
        /// Host index.
        h: usize,
        /// Coalescer generation (stale timers are ignored).
        gen: u64,
    },
    /// Per-frame receive stack processing finished.
    RxStack {
        /// Flow index.
        f: usize,
        /// Receiving endpoint.
        ep: usize,
        /// The segment being delivered to TCP.
        seg: Segment,
    },
    /// A TCP timer (RTO / delayed ACK) fired.
    ConnTimer {
        /// Flow index.
        f: usize,
        /// Endpoint the timer belongs to.
        ep: usize,
        /// Which timer.
        kind: TimerKind,
        /// Connection timer generation (stale timers are no-ops).
        gen: u64,
    },
    /// Run one (chunk of a) batched application read.
    AppRead {
        /// Flow index.
        f: usize,
        /// Reading endpoint.
        ep: usize,
        /// Whether this chunk pays the syscall + wakeup cost.
        fresh: bool,
    },
    /// An application read chunk's CPU time completed.
    ReadDone {
        /// Flow index.
        f: usize,
        /// Reading endpoint.
        ep: usize,
        /// Bytes copied out by the chunk.
        bytes: u64,
    },
    /// One iteration of the pktgen loop.
    PktgenTick {
        /// Flow index.
        f: usize,
    },
    /// Sample the observability timelines (scheduled on a fixed sim-clock
    /// cadence while [`Lab::enable_obs`] is active).
    ObsSample,
    /// Apply every arrival pending in the grid ingress channel for host
    /// `h` at the current instant, in canonical key order. Front-class:
    /// scheduled via [`LabEngine::schedule_front_at`], so the batch lands
    /// before any normal event of the same instant regardless of which
    /// shard produced it (see [`grid`]).
    IngressDrain {
        /// Host index.
        h: usize,
    },
}

impl Ev {
    /// Number of event kinds — the width of [`LabProf::fired`].
    pub const KINDS: usize = 13;

    /// Event-kind names, indexed by [`Ev::prof_idx`]. Used by the
    /// profiling sidecar so fired-count reports are self-describing.
    pub const NAMES: [&'static str; Ev::KINDS] = [
        "StartFlow",
        "TxDma",
        "TxWire",
        "FrameArrival",
        "RxDmaDone",
        "CoalesceTimer",
        "RxStack",
        "ConnTimer",
        "AppRead",
        "ReadDone",
        "PktgenTick",
        "ObsSample",
        "IngressDrain",
    ];

    /// Dense kind index of this event for the per-kind fired counters.
    pub fn prof_idx(&self) -> usize {
        match self {
            Ev::StartFlow { .. } => 0,
            Ev::TxDma { .. } => 1,
            Ev::TxWire { .. } => 2,
            Ev::FrameArrival { .. } => 3,
            Ev::RxDmaDone { .. } => 4,
            Ev::CoalesceTimer { .. } => 5,
            Ev::RxStack { .. } => 6,
            Ev::ConnTimer { .. } => 7,
            Ev::AppRead { .. } => 8,
            Ev::ReadDone { .. } => 9,
            Ev::PktgenTick { .. } => 10,
            Ev::ObsSample => 11,
            Ev::IngressDrain { .. } => 12,
        }
    }
}

/// Deterministic self-profiling counters of one lab replica: per-kind
/// event fired counts, the interrupt-batch-size histogram, and the
/// action-pool hit/miss split. All values live strictly in the sim
/// domain (pure functions of the event history), so they are bitwise
/// reproducible for a fixed configuration. Fired counts and the batch
/// histogram are additionally **shard-count-invariant when summed over
/// shards** in grid mode — every event fires on exactly one shard —
/// while the pool split is per-shard only (each replica grows its own
/// pool). See `DESIGN.md` §16 for the full invariance argument.
#[derive(Debug, Clone, Default)]
pub struct LabProf {
    /// Events fired, by [`Ev::prof_idx`] kind.
    pub fired: [u64; Ev::KINDS],
    /// Frames per receive interrupt (the coalescer's batch sizes),
    /// log-bucketed.
    pub rx_batch: Hist,
    /// Action-buffer pool hits in [`Lab::take_actions`].
    pub pool_hits: u64,
    /// Action-buffer pool misses (a fresh allocation was needed).
    pub pool_misses: u64,
}

impl EventFire<Lab> for Ev {
    fn fire(self, lab: &mut Lab, eng: &mut LabEngine) {
        lab.prof.fired[self.prof_idx()] += 1;
        match self {
            Ev::StartFlow { f } => start_flow(lab, eng, f),
            Ev::TxDma { f, ep, seg } => tx_dma(lab, eng, f, ep, seg),
            Ev::TxWire { f, ep, seg } => tx_wire(lab, eng, f, ep, seg),
            Ev::FrameArrival {
                f,
                ep,
                seg,
                corrupted,
            } => frame_arrival(lab, eng, f, ep, seg, corrupted),
            Ev::RxDmaDone { f, ep, seg } => {
                let h = lab.flows[f].host[ep];
                lab.hosts[h]
                    .rx_pending
                    .push_back(RxFrame::Tcp { flow: f, ep, seg });
                coalesce_frame(lab, eng, h);
            }
            Ev::CoalesceTimer { h, gen } => {
                if let Some(batch) = lab.hosts[h].coalescer.on_timer(gen) {
                    process_rx_batch(lab, eng, h, batch);
                }
            }
            Ev::RxStack { f, ep, seg } => {
                let now = eng.now();
                let mut acts = lab.take_actions();
                lab.flows[f].conns[ep].on_segment_into(now, &seg, &mut acts);
                // Every ACK/data arrival revalidates the connection's
                // sequence-space invariants under the sanitizer.
                check_tcp_invariants(lab, eng, f, ep);
                process_actions(lab, eng, f, ep, &mut acts);
                lab.recycle_actions(acts);
            }
            Ev::ConnTimer { f, ep, kind, gen } => {
                // This event is the one the slot tracks; clear it so a
                // re-arm from the handler stores its own id.
                lab.flows[f].timer_ids[ep][timer_slot(kind)] = None;
                let now = eng.now();
                let h = lab.flows[f].host[ep];
                let stage = match kind {
                    TimerKind::Rto => Stage::TimerRto,
                    TimerKind::DelAck => Stage::TimerDelack,
                };
                lab.hosts[h].probe(now, stage, f as u64, 0, Nanos::ZERO);
                let mut acts = lab.take_actions();
                lab.flows[f].conns[ep].on_timer_into(now, kind, gen, &mut acts);
                check_tcp_invariants(lab, eng, f, ep);
                process_actions(lab, eng, f, ep, &mut acts);
                lab.recycle_actions(acts);
            }
            Ev::AppRead { f, ep, fresh } => app_read(lab, eng, f, ep, fresh),
            Ev::ReadDone { f, ep, bytes } => read_done(lab, eng, f, ep, bytes),
            Ev::PktgenTick { f } => pktgen_tick(lab, eng, f),
            Ev::ObsSample => obs_sample(lab, eng),
            Ev::IngressDrain { h } => grid::ingress_drain(lab, eng, h),
        }
    }
}

/// Index of a connection timer in [`FlowRt::timer_ids`].
fn timer_slot(kind: TimerKind) -> usize {
    match kind {
        TimerKind::Rto => 0,
        TimerKind::DelAck => 1,
    }
}

/// The application driving a flow.
#[derive(Debug)]
pub enum App {
    /// NTTCP bulk transfer: endpoint 0 transmits, endpoint 1 receives.
    Nttcp {
        /// Sender half.
        tx: NttcpSender,
        /// Receiver half.
        rx: NttcpReceiver,
    },
    /// NetPipe ping-pong: endpoint 0 initiates.
    NetPipe(NetPipe),
    /// pktgen: endpoint 0 blasts raw UDP frames at endpoint 1.
    Pktgen(Pktgen),
    /// Iperf: endpoint 0 streams for a fixed duration; endpoint 1 counts
    /// bytes delivered within the window.
    Iperf(Iperf),
    /// Disk-to-disk relay: endpoint 0 streams bytes read off its host's
    /// disk bank, endpoint 1 writes delivered bytes back out to its own —
    /// the paper's capstone `disk→NIC→WAN→NIC→disk` pipeline stage.
    DiskPipe(DiskPipe),
}

/// How many disk chunks a [`DiskPipe`] sender keeps in flight on its read
/// lane. One chunk would stall the stream every chunk boundary (and
/// re-pay positioning on each resume); two keeps a streaming spindle
/// seamlessly busy while bounding staged memory.
const DISK_READAHEAD: usize = 2;

/// State of one disk→NIC→WAN→NIC→disk relay stream.
///
/// The socket side is an NTTCP pair; the storage side gates it. The
/// sender may only write bytes its disk has actually produced, so the
/// pump ([`disk_pump`]) admits chunk reads against the source
/// [`DiskModel`] (bounded read-ahead), stages completed chunks, and
/// streams them into the socket as buffer space allows. The receiver
/// write-behinds every delivered batch onto its destination disk; the
/// pipeline's true end is the *drain* of that write lane, tracked
/// analytically in [`DiskPipe::drain_done`] — no event variants needed.
#[derive(Debug)]
pub struct DiskPipe {
    /// Socket byte pump (payload-sized writes).
    pub tx: NttcpSender,
    /// Receiver half: counts delivered bytes.
    pub rx: NttcpReceiver,
    /// Stripe lane this stream uses on both hosts' disk banks.
    pub stream: usize,
    /// Disk request granularity, bytes (a multiple of the socket payload
    /// so staged bytes always cover whole writes).
    chunk: u64,
    /// Total bytes to move end to end.
    total: u64,
    /// Bytes admitted to the source disk's read lane so far.
    read_admitted: u64,
    /// Bytes read off the source disk and staged for socket writes.
    staged: u64,
    /// Outstanding read admissions (completion instant, bytes), oldest
    /// first — FIFO lane order, so completion instants are nondecreasing.
    reads: VecDeque<(Nanos, u64)>,
    /// Instant of the already-scheduled pump wakeup, if one is pending.
    wake_at: Option<Nanos>,
    /// Completion instant of the last destination-disk write admission.
    drain_done: Nanos,
}

impl DiskPipe {
    /// A relay moving `count` socket writes of `payload` bytes, issuing
    /// disk requests of `chunk_writes` payloads each, striped onto lane
    /// `stream` of both endpoint hosts' disk banks.
    pub fn new(payload: u64, count: u64, chunk_writes: u64, stream: usize) -> Self {
        assert!(payload > 0 && chunk_writes > 0, "degenerate disk pipe");
        DiskPipe {
            tx: NttcpSender::new(payload, count),
            rx: NttcpReceiver::new(payload * count),
            stream,
            chunk: payload * chunk_writes,
            total: payload * count,
            read_admitted: 0,
            staged: 0,
            reads: VecDeque::new(),
            wake_at: None,
            drain_done: Nanos::ZERO,
        }
    }

    /// Completion instant of the last destination-disk write admission —
    /// when the pipeline's final stage actually drains. At least the
    /// flow's network completion (`t_done`); later when the destination
    /// disk is the bottleneck.
    pub fn drain_done(&self) -> Nanos {
        self.drain_done
    }

    /// Total bytes this relay moves end to end.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

/// Measurement bookkeeping for a flow.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlowMeasure {
    /// First application write.
    pub t_start: Option<Nanos>,
    /// Workload completion.
    pub t_done: Option<Nanos>,
    /// Hottest-CPU busy time at start, per endpoint.
    pub cpu_busy_start: [Nanos; 2],
    /// Hottest-CPU busy time captured at the completion event (timers that
    /// fire after completion must not pollute the load figure).
    pub cpu_busy_end: [Nanos; 2],
}

/// One flow between two hosts.
#[derive(Debug)]
pub struct FlowRt {
    /// Host index per endpoint.
    pub host: [usize; 2],
    /// Link-id route per direction (`route[0]`: ep0→ep1).
    pub route: [Vec<usize>; 2],
    /// Connection state per endpoint.
    pub conns: [TcpConn; 2],
    /// The driving application.
    pub app: App,
    /// Measurement state.
    pub meas: FlowMeasure,
    /// Delivered bytes awaiting an application read, per endpoint (the
    /// reader batches everything available into one `recv`).
    pub read_pending: [u64; 2],
    /// Whether a read event is already scheduled, per endpoint.
    pub read_scheduled: [bool; 2],
    /// Pending connection-timer event per endpoint and [`TimerKind`]
    /// (indexed by [`timer_slot`]). When the connection re-arms a timer,
    /// the superseded event — a generation-guarded no-op — is cancelled
    /// in O(1) instead of lingering in the calendar until it expires.
    timer_ids: [[Option<EventId>; 2]; 2],
    /// Whether the first [`Ev::StartFlow`] has fired. Disk relays reuse
    /// that event as their pump wakeup, so `start_flow` is re-entrant;
    /// the one-time work (CPU baselines, connection-open stamps) is
    /// gated here.
    started: bool,
}

/// Live state of the observability layer while a lab run has metrics
/// sampling enabled (see [`Lab::enable_obs`]).
#[derive(Debug)]
struct ObsRt {
    /// Sampling cadence.
    interval: Nanos,
    /// The step-series being accumulated.
    timelines: Timelines,
    /// Previous hottest-CPU busy snapshot per host, for per-interval
    /// utilization deltas (classic mode only; grid mode samples the
    /// cumulative [`MetricKind::CpuBusyNanos`] instead).
    cpu_prev: Vec<Nanos>,
    /// Whether an [`Ev::ObsSample`] is scheduled. In grid mode the chain
    /// stops when the shard's calendar drains and is revived by the next
    /// cross-shard message (see [`obs_revive`]); in classic mode it stays
    /// armed until every workload completes.
    armed: bool,
}

/// The world the engine runs.
#[derive(Debug)]
pub struct Lab {
    /// Hosts by index.
    pub hosts: Vec<HostRt>,
    /// Links by index (shared across flows where topology demands).
    pub links: Vec<PathState>,
    /// Flows by index.
    pub flows: Vec<FlowRt>,
    /// Recycled [`Action`] buffers for the TCP entry points: the hot path
    /// hands each `*_into` call a cleared buffer from here instead of
    /// allocating a fresh `Vec` per segment.
    action_pool: Vec<Vec<Action>>,
    /// Metrics-timeline sampling state (None = observability disabled; the
    /// disabled path schedules zero events and records zero samples).
    obs: Option<ObsRt>,
    /// Grid (sharded-execution) runtime. `None` = classic whole-world
    /// execution; `Some` reroutes every wire arrival through the
    /// canonically ordered ingress channel and restricts [`kick`] to the
    /// hosts this shard owns (see [`grid`]).
    grid: Option<GridRt>,
    /// Deterministic self-profiling counters (always on: pure integer
    /// increments on paths that already touch the counted state).
    prof: LabProf,
}

impl Lab {
    /// An empty laboratory.
    pub fn new() -> Self {
        Lab {
            hosts: Vec::new(),
            links: Vec::new(),
            flows: Vec::new(),
            action_pool: Vec::new(),
            obs: None,
            grid: None,
            prof: LabProf::default(),
        }
    }

    /// Switch this replica into grid (sharded) execution. Call after the
    /// topology is fully assembled (the runtime sizes its channel and key
    /// mint from the current host/flow counts) and before [`kick`].
    pub fn enable_grid(&mut self, g: GridRt) {
        assert_eq!(
            g.owner.len(),
            self.hosts.len(),
            "owner map must cover every host"
        );
        self.grid = Some(g);
    }

    /// The grid runtime, if this lab executes as one shard of a grid.
    pub fn grid(&self) -> Option<&GridRt> {
        self.grid.as_ref()
    }

    /// This replica's deterministic self-profiling counters.
    pub fn prof(&self) -> &LabProf {
        &self.prof
    }

    /// Take a cleared [`Action`] buffer from the pool (or allocate the
    /// pool's first few). Return it with [`Lab::recycle_actions`].
    fn take_actions(&mut self) -> Vec<Action> {
        match self.action_pool.pop() {
            Some(buf) => {
                self.prof.pool_hits += 1;
                buf
            }
            None => {
                self.prof.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a drained action buffer to the pool for reuse.
    fn recycle_actions(&mut self, mut buf: Vec<Action>) {
        buf.clear();
        self.action_pool.push(buf);
    }

    /// Add a host; returns its index.
    pub fn add_host(&mut self, cfg: HostConfig) -> usize {
        self.hosts.push(HostRt::new(cfg));
        self.hosts.len() - 1
    }

    /// Add a link; returns its index.
    pub fn add_link(&mut self, path: &Path, rng: SimRng) -> usize {
        self.links.push(PathState::new(path, rng));
        self.links.len() - 1
    }

    /// Add a flow; returns its index. Connections are created from each
    /// endpoint's sysctls, with the peer's MSS taken from the peer config
    /// (an established connection has negotiated `min(mss_a, mss_b)`).
    pub fn add_flow(
        &mut self,
        a: usize,
        b: usize,
        route_fwd: Vec<usize>,
        route_rev: Vec<usize>,
        app: App,
    ) -> usize {
        let s_a: Sysctls = self.hosts[a].cfg.sysctls;
        let s_b: Sysctls = self.hosts[b].cfg.sysctls;
        let conn_a = TcpConn::new(s_a, s_b.mss());
        let conn_b = TcpConn::new(s_b, s_a.mss());
        self.flows.push(FlowRt {
            host: [a, b],
            route: [route_fwd, route_rev],
            conns: [conn_a, conn_b],
            app,
            meas: FlowMeasure::default(),
            read_pending: [0, 0],
            read_scheduled: [false, false],
            timer_ids: [[None; 2]; 2],
            started: false,
        });
        self.flows.len() - 1
    }

    /// Attach a disk bank to a host — the storage endpoints of the
    /// disk→NIC→WAN→NIC→disk pipeline. Replaces any previous bank.
    pub fn attach_disk(&mut self, host: usize, disk: DiskModel) {
        self.hosts[host].disk = Some(disk);
    }

    /// Whether every flow's workload has completed.
    pub fn all_done(&self) -> bool {
        self.flows.iter().all(|f| f.meas.t_done.is_some())
    }

    /// Enable the observability layer: arm every host's tracer in sampling
    /// mode (ring detail for ~1/`sample_every` packets) and start
    /// accumulating metrics timelines on `cfg.sample_interval` cadence.
    ///
    /// The tracer sampling RNG is forked per host from `seed` — the same
    /// seed that drives the scenario — so the kept sample is a pure
    /// function of the run configuration, never a global constant.
    ///
    /// Call after the topology is assembled and before [`kick`] (the first
    /// sample event is scheduled by `kick`).
    pub fn enable_obs(&mut self, cfg: &ObsConfig, seed: u64) {
        let mut root = SimRng::seeded(seed);
        for (i, host) in self.hosts.iter_mut().enumerate() {
            host.tracer = Tracer::sampling(
                cfg.ring_capacity,
                cfg.sample_every,
                root.fork(&format!("tracer-{i}")),
            );
        }
        let interval = cfg.clamped_interval();
        self.obs = Some(ObsRt {
            interval,
            timelines: Timelines::new(interval),
            cpu_prev: vec![Nanos::ZERO; self.hosts.len()],
            armed: true,
        });
    }

    /// Whether metrics-timeline sampling is active.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Stop metrics sampling and take the accumulated timelines (None if
    /// observability was never enabled).
    pub fn take_timelines(&mut self) -> Option<Timelines> {
        self.obs.take().map(|o| o.timelines)
    }

    /// Arm every host whose tracer is disabled with a full (unsampled)
    /// flight-recorder ring of the most recent `ring_capacity` trace
    /// events. Hosts already tracing (e.g. via [`Lab::enable_obs`]) keep
    /// their tracer. Recording is observe-only: it schedules no events and
    /// draws no randomness, so arming it cannot perturb a run.
    pub fn arm_flight_recorder(&mut self, ring_capacity: usize) {
        for host in &mut self.hosts {
            if !host.tracer.is_enabled() {
                host.tracer = Tracer::full(ring_capacity);
            }
        }
    }
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// runtime sanitizer wiring
// ---------------------------------------------------------------------

/// Ring capacity of the flight recorder armed alongside the sanitizer:
/// the "last N trace events" a violation dump shows per host.
pub const FLIGHT_RING: usize = 256;

/// Install a runtime invariant [`Sanitizer`] on `eng` when the process-wide
/// default asks for one (always in debug builds; opt-in via
/// [`tengig_sim::sanitizer::set_default_enabled`] in release builds).
///
/// The recorded `seed` makes every violation a one-command repro, and the
/// flight recorder armed with it makes the violation come with its story:
/// [`check_sanitizer`] appends each host's last [`FLIGHT_RING`] trace
/// events to the panic message.
pub fn install_default_sanitizer(lab: &mut Lab, eng: &mut LabEngine, seed: u64) {
    if SimConfig::default().sanitize {
        eng.install_sanitizer(Sanitizer::new(seed));
        lab.arm_flight_recorder(FLIGHT_RING);
    }
}

/// Collect the flight-recorder dump: every host's ring of recent trace
/// events, in host-index order (empty if no tracer was armed).
pub fn flight_dump(lab: &Lab) -> FlightDump {
    FlightDump {
        hosts: lab
            .hosts
            .iter()
            .enumerate()
            .map(|(h, host)| (h, host.tracer.recent().cloned().collect()))
            .collect(),
    }
}

/// Panic with the sanitizer's full report (seed, scenario, violations) —
/// followed by the flight-recorder dump, so the panic carries the recent
/// per-host packet history and not just a scalar — if any invariant was
/// breached during the run. With `drained`, first assert the
/// byte-conservation ledger settled to zero in-flight — only valid for
/// runs whose event calendar fully emptied (windowed measurements stop with
/// frames legitimately still on the wire).
pub fn check_sanitizer(lab: &Lab, eng: &mut LabEngine, drained: bool) {
    let now = eng.now();
    if let Some(s) = eng.sanitizer_mut() {
        if drained {
            s.check_drained(now);
        }
        if s.has_violations() {
            panic!("{}\n{}", s.report(), flight_dump(lab).text());
        }
    }
}

/// Record a TCP invariant breach on flow `f` endpoint `ep`, if the
/// connection's state is inconsistent and a sanitizer is installed.
fn check_tcp_invariants(lab: &Lab, eng: &mut LabEngine, f: usize, ep: usize) {
    let now = eng.now();
    if let Some(s) = eng.sanitizer_mut() {
        if let Err(e) = lab.flows[f].conns[ep].check_invariants() {
            s.record(
                ViolationKind::TcpInvariant,
                now,
                format!("flow {f} ep {ep}: {e}"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// engine wiring (free functions: events close over flow/endpoint indices)
// ---------------------------------------------------------------------

/// Start every flow's workload shortly after t=0 (staggered so multi-flow
/// runs do not phase-lock). In grid mode only the flows whose transmitting
/// host this shard owns are started — each flow's driver runs on exactly
/// one shard; the stagger uses the global flow index either way, so start
/// times are shard-count-invariant.
pub fn kick(lab: &mut Lab, eng: &mut LabEngine) {
    for f in 0..lab.flows.len() {
        if let Some(g) = &lab.grid {
            if !g.owns(lab.flows[f].host[0]) {
                continue;
            }
        }
        let at = Nanos::from_micros(1) + Nanos::from_nanos(137 * f as u64);
        eng.schedule_event_at(at, Ev::StartFlow { f });
    }
    if let Some(obs) = &lab.obs {
        eng.schedule_event_at(obs.interval, Ev::ObsSample);
    }
}

/// Start flows at explicit arrival instants — the open-loop workload
/// plane. `arrivals[f]` is flow `f`'s absolute start time, typically a
/// pre-built [`tengig_sim::build_schedule`] draw, so the generator costs
/// zero RNG draws and zero events inside the run itself. Grid filtering
/// and obs arming mirror [`kick`]; arrival instants come from outside, so
/// a pre-built schedule is shard-count-invariant for free.
pub fn kick_at(lab: &mut Lab, eng: &mut LabEngine, arrivals: &[Nanos]) {
    assert_eq!(
        arrivals.len(),
        lab.flows.len(),
        "one arrival instant per flow"
    );
    for (f, at) in arrivals.iter().enumerate() {
        if let Some(g) = &lab.grid {
            if !g.owns(lab.flows[f].host[0]) {
                continue;
            }
        }
        eng.schedule_event_at(*at, Ev::StartFlow { f });
    }
    if let Some(obs) = &lab.obs {
        eng.schedule_event_at(obs.interval, Ev::ObsSample);
    }
}

/// One observability sample: read every flow's TCP state, every host's
/// NIC/CPU state, and every link's queue state into the step-series, then
/// re-arm the sampling timer (until all workloads complete, so a finished
/// run's calendar drains).
///
/// Strictly read-only with respect to the simulation: no resource is
/// admitted, no randomness drawn, no connection touched — so enabling
/// observability never changes what a run measures.
///
/// In grid mode each shard samples **only the scopes it owns** — flow
/// endpoints on owned hosts, owned hosts, links whose transmitting host
/// it owns — so the per-shard timelines partition the scope space and
/// [`Timelines::merge`] reassembles a shard-count-invariant whole. Two
/// metrics change shape to keep that invariant: per-interval
/// [`MetricKind::CpuPermille`] deltas become the cumulative
/// [`MetricKind::CpuBusyNanos`] (a dormant shard's value is exactly
/// frozen, so skipped samples collapse away), and the time-decaying
/// [`MetricKind::QueueBytes`] is skipped (its value depends on *when* the
/// owning shard happens to sample).
fn obs_sample(lab: &mut Lab, eng: &mut LabEngine) {
    let now = eng.now();
    let Some(mut obs) = lab.obs.take() else {
        return;
    };
    let tl = &mut obs.timelines;
    let grid_mode = lab.grid.is_some();
    for (f, flow) in lab.flows.iter().enumerate() {
        for ep in 0..2 {
            if let Some(g) = &lab.grid {
                if !g.owns(flow.host[ep]) {
                    continue;
                }
            }
            let c = &flow.conns[ep];
            let scope = Scope::Flow {
                flow: f as u32,
                ep: ep as u32,
            };
            tl.record(scope, MetricKind::Cwnd, now, c.cc.cwnd);
            tl.record(scope, MetricKind::Ssthresh, now, c.cc.ssthresh);
            tl.record(
                scope,
                MetricKind::SrttNanos,
                now,
                c.srtt().unwrap_or(Nanos::ZERO).as_nanos(),
            );
            tl.record(scope, MetricKind::RttvarNanos, now, c.rttvar().as_nanos());
            tl.record(scope, MetricKind::BytesInFlight, now, c.inflight_bytes());
            tl.record(scope, MetricKind::Retransmits, now, c.stats.retransmits);
        }
    }
    for (h, host) in lab.hosts.iter().enumerate() {
        if let Some(g) = &lab.grid {
            if !g.owns(h) {
                continue;
            }
        }
        let scope = Scope::Host { host: h as u32 };
        if grid_mode {
            tl.record(
                scope,
                MetricKind::CpuBusyNanos,
                now,
                host.hottest_cpu_busy_total().as_nanos(),
            );
        } else {
            let busy = host.hottest_cpu_busy(now);
            let delta = busy.saturating_sub(obs.cpu_prev[h]);
            obs.cpu_prev[h] = busy;
            let permille = if obs.interval == Nanos::ZERO {
                0
            } else {
                (delta.as_nanos().saturating_mul(1000) / obs.interval.as_nanos()).min(1000)
            };
            tl.record(scope, MetricKind::CpuPermille, now, permille);
        }
        tl.record(
            scope,
            MetricKind::RxRingFrames,
            now,
            host.rx_pending.len() as u64,
        );
        tl.record(
            scope,
            MetricKind::CoalescePending,
            now,
            host.coalescer.pending() as u64,
        );
        tl.record(
            scope,
            MetricKind::CoalesceDelayNanos,
            now,
            host.cfg.nic.rx_coalesce_delay.as_nanos(),
        );
        tl.record(scope, MetricKind::RxCrcDrops, now, host.rx_crc_drops);
    }
    for (l, link) in lab.links.iter().enumerate() {
        if let Some(g) = &lab.grid {
            if !link_owned(lab, g, l) {
                continue;
            }
        }
        let scope = Scope::Link { link: l as u32 };
        if !grid_mode {
            let backlog: u64 = link.hops.iter().map(|hop| hop.backlog_bytes(now)).sum();
            tl.record(scope, MetricKind::QueueBytes, now, backlog);
        }
        tl.record(scope, MetricKind::QueueDrops, now, link.total_drops());
        tl.record(scope, MetricKind::ImpairDrops, now, link.impair_drops());
    }
    let interval = obs.interval;
    // Classic mode stops sampling once every workload completes; grid
    // mode re-arms while this shard's calendar holds any event (so every
    // active phase is sampled on the global k·interval grid) and goes
    // dormant when it drains — revived by the next cross-shard message.
    let rearm = if grid_mode {
        eng.pending() > 0
    } else {
        !lab.all_done()
    };
    obs.armed = rearm;
    lab.obs = Some(obs);
    if rearm {
        eng.schedule_event_at(now + interval, Ev::ObsSample);
    }
}

/// The owning-shard test for link `l` in grid mode: a link belongs to the
/// shard owning its *transmitting* host (the only shard whose events
/// mutate the link's state). Any flow routing over the link names the
/// transmitter; the grid partition-safety rule guarantees every flow
/// sharing the link agrees. A link referenced by no flow is sampled by no
/// shard — it can never change, so omitting it is invariant too.
fn link_owned(lab: &Lab, g: &GridRt, l: usize) -> bool {
    for flow in &lab.flows {
        for dir in 0..2 {
            if flow.route[dir].contains(&l) {
                return g.owns(flow.host[dir]);
            }
        }
    }
    false
}

/// Grid-mode revival of a dormant sampling chain: when a cross-shard
/// message lands on a shard whose [`Ev::ObsSample`] chain stopped (its
/// calendar had drained), restart it at the next multiple of the sampling
/// interval at or after the message's arrival instant — exactly the grid
/// of instants the equivalent single-shard run samples on — so merged
/// timelines stay shard-count-invariant.
pub(super) fn obs_revive(lab: &mut Lab, eng: &mut LabEngine, at: Nanos) {
    let Some(obs) = &mut lab.obs else {
        return;
    };
    if obs.armed {
        return;
    }
    obs.armed = true;
    let iv = obs.interval.as_nanos().max(1);
    let k = at.as_nanos().div_ceil(iv);
    eng.schedule_event_at(Nanos::from_nanos(k.saturating_mul(iv)), Ev::ObsSample);
}

fn start_flow(lab: &mut Lab, eng: &mut LabEngine, f: usize) {
    let now = eng.now();
    // First fire only: capture CPU baselines for load measurement and
    // stamp the connections open. Disk relays re-enter here on every pump
    // wakeup ([`Ev::StartFlow`] doubles as their timer), and a re-fire
    // must not move the baselines.
    if !lab.flows[f].started {
        lab.flows[f].started = true;
        for ep in 0..2 {
            let h = lab.flows[f].host[ep];
            lab.flows[f].meas.cpu_busy_start[ep] = lab.hosts[h].hottest_cpu_busy(now);
            lab.flows[f].conns[ep].on_open(now);
        }
    }
    match &mut lab.flows[f].app {
        App::Nttcp { .. } | App::Iperf(_) => app_write_pump(lab, eng, f),
        App::NetPipe(np) => {
            if let Some(w) = np.start_ping(now) {
                lab.flows[f].meas.t_start.get_or_insert(now);
                app_write(lab, eng, f, 0, w);
            }
        }
        App::Pktgen(_) => pktgen_tick(lab, eng, f),
        App::DiskPipe(_) => disk_pump(lab, eng, f),
    }
}

/// The NTTCP sender loop: issue writes while buffer space allows.
fn app_write_pump(lab: &mut Lab, eng: &mut LabEngine, f: usize) {
    let now = eng.now();
    loop {
        let space = lab.flows[f].conns[0].snd_buf_space();
        let next = match &mut lab.flows[f].app {
            App::Nttcp { tx, .. } => tx.next_write(now, space),
            App::Iperf(ip) => (ip.keep_writing(now) && space >= ip.payload).then_some(ip.payload),
            _ => None,
        };
        let Some(w) = next else { break };
        lab.flows[f].meas.t_start.get_or_insert(now);
        app_write(lab, eng, f, 0, w);
    }
}

/// The disk-relay sender loop: retire source-disk reads the spindle has
/// finished, keep the read lane primed ([`DISK_READAHEAD`] chunks), and
/// stream staged bytes into the socket while buffer space allows. When
/// the socket could take more but the disk has not produced it yet, the
/// pump arms an [`Ev::StartFlow`] wakeup at the oldest outstanding
/// read's completion — the event that started the flow doubles as the
/// pump timer, so the disk plane adds no event variants of its own.
fn disk_pump(lab: &mut Lab, eng: &mut LabEngine, f: usize) {
    let now = eng.now();
    let h = lab.flows[f].host[0];
    // Disk bookkeeping: retire, prime, arm the wakeup.
    {
        let flow = &mut lab.flows[f];
        let host = &mut lab.hosts[h];
        let App::DiskPipe(dp) = &mut flow.app else {
            return;
        };
        let disk = host
            .disk
            .as_mut()
            .expect("a DiskPipe endpoint host has a disk bank attached");
        if dp.wake_at.is_some_and(|t| t <= now) {
            dp.wake_at = None;
        }
        while dp.reads.front().is_some_and(|(done, _)| *done <= now) {
            if let Some((_, n)) = dp.reads.pop_front() {
                dp.staged += n;
            }
        }
        while dp.reads.len() < DISK_READAHEAD && dp.read_admitted < dp.total {
            let n = dp.chunk.min(dp.total - dp.read_admitted);
            let adm = disk.read(dp.stream, now, n);
            dp.read_admitted += n;
            dp.reads.push_back((adm.done, n));
        }
        if dp.wake_at.is_none() {
            if let Some(&(done, _)) = dp.reads.front() {
                eng.schedule_event_at(done, Ev::StartFlow { f });
                dp.wake_at = Some(done);
            }
        }
    }
    // Stream staged bytes into the socket while space allows. One write
    // per iteration so `snd_buf_space` reflects each accepted write.
    loop {
        let space = lab.flows[f].conns[0].snd_buf_space();
        let next = match &mut lab.flows[f].app {
            App::DiskPipe(dp) if dp.staged >= dp.tx.payload => {
                let w = dp.tx.next_write(now, space);
                if let Some(w) = w {
                    dp.staged -= w;
                }
                w
            }
            _ => None,
        };
        let Some(w) = next else { break };
        lab.flows[f].meas.t_start.get_or_insert(now);
        app_write(lab, eng, f, 0, w);
    }
}

/// One application write at endpoint `ep`: charge the syscall, push the
/// bytes into the connection, process the resulting actions.
fn app_write(lab: &mut Lab, eng: &mut LabEngine, f: usize, ep: usize, bytes: u64) {
    let now = eng.now();
    let h = lab.flows[f].host[ep];
    let cpu_idx = lab.hosts[h].app_cpu(f);
    let cost = lab.hosts[h].write_cpu_cost(bytes);
    lab.hosts[h].cpu.admit_pinned(cpu_idx, now, cost);
    let bus = lab.hosts[h].write_bus_time(bytes);
    lab.hosts[h].membus.admit(now, bus);
    lab.hosts[h].probe(now, Stage::AppWrite, f as u64, bytes, cost);
    let mut actions = lab.take_actions();
    let accepted = lab.flows[f].conns[ep].on_app_write_into(now, bytes, &mut actions);
    debug_assert_eq!(accepted, bytes, "writer checked space before writing");
    process_actions(lab, eng, f, ep, &mut actions);
    lab.recycle_actions(actions);
}

/// Turn connection actions into scheduled, cost-charged events. The
/// buffer is drained (not consumed) so the caller can recycle it through
/// the lab's action pool.
pub fn process_actions(
    lab: &mut Lab,
    eng: &mut LabEngine,
    f: usize,
    ep: usize,
    actions: &mut Vec<Action>,
) {
    for act in actions.drain(..) {
        match act {
            Action::Send(seg) => send_segment(lab, eng, f, ep, seg),
            Action::SetTimer { kind, at, gen } => {
                // A re-armed timer supersedes the pending one: the old
                // event is a generation-guarded no-op (the connection
                // bumps its generation on every arm), so cancel it
                // instead of letting it fire into the void.
                let slot = timer_slot(kind);
                if let Some(old) = lab.flows[f].timer_ids[ep][slot].take() {
                    eng.cancel(old);
                }
                // RTO/delack timers are armed far out and almost always
                // cancelled right here on the next arm: the calendar's
                // timing-wheel lane makes that churn O(1) with identical
                // pop order.
                let id = eng.schedule_timer_at(at, Ev::ConnTimer { f, ep, kind, gen });
                lab.flows[f].timer_ids[ep][slot] = Some(id);
            }
            Action::DeliverData { bytes } => schedule_app_read(lab, eng, f, ep, bytes),
            Action::SndBufSpace => {
                if ep == 0 {
                    match lab.flows[f].app {
                        App::Nttcp { .. } | App::Iperf(_) => app_write_pump(lab, eng, f),
                        App::DiskPipe(_) => disk_pump(lab, eng, f),
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Transmit pipeline: CPU → (event) → PCI-X DMA with concurrent memory-bus
/// traffic → (event) → link route → arrival.
///
/// Each stage is engaged by an engine event at the moment the previous
/// stage finishes, so every server admission happens at current time — a
/// server is never reserved in the future (which would waste idle gaps and
/// ratchet queues ahead of the clock).
fn send_segment(lab: &mut Lab, eng: &mut LabEngine, f: usize, src_ep: usize, seg: Segment) {
    let now = eng.now();
    let h = lab.flows[f].host[src_ep];

    // CPU: data segments are produced in app/softirq context on the CPU
    // that ran the triggering event; charge the app CPU for data, the IRQ
    // CPU for pure ACKs (they are emitted from receive processing).
    let host = &mut lab.hosts[h];
    let cpu_idx = if seg.is_pure_ack() {
        host.irq_cpu()
    } else {
        host.app_cpu(f)
    };
    let cpu_cost = host.tx_cpu_cost(&seg);
    let cpu_adm = host.cpu.admit_pinned(cpu_idx, now, cpu_cost);
    host.probe(now, Stage::TxStack, seg.seq, seg.len, cpu_cost);
    if seg.retransmit {
        host.probe(now, Stage::Retransmit, seg.seq, seg.len, Nanos::ZERO);
    }
    eng.schedule_event_at(cpu_adm.done, Ev::TxDma { f, ep: src_ep, seg });
}

/// Stage 2 of transmit: the NIC DMA-reads the frame over PCI-X, its
/// memory-bus traffic concurrent with the bus transfer.
fn tx_dma(lab: &mut Lab, eng: &mut LabEngine, f: usize, src_ep: usize, seg: Segment) {
    let now = eng.now();
    let h = lab.flows[f].host[src_ep];
    let frame = HostRt::frame_bytes(&seg);
    let host = &mut lab.hosts[h];
    let pci = host.pci_time(frame);
    let pci_adm = host.pci.admit(now, pci);
    let bus_adm = host.membus.admit(now, host.tx_bus_time(&seg));
    let t3 = pci_adm.done.max(bus_adm.done);
    host.probe(now, Stage::TxDma, seg.seq, frame, pci);
    eng.schedule_event_at(t3, Ev::TxWire { f, ep: src_ep, seg });
}

/// The fate of one frame (and at most one impairment-minted duplicate)
/// across a whole link route. Fixed-size arrays — the walk allocates
/// nothing, so un-impaired runs pay only an `is_none` check per hop.
struct RouteVerdict {
    /// Copies that reached the far end (original first, then the
    /// duplicate if one was minted and survived).
    deliveries: [Option<Delivery>; 2],
    /// A duplicate copy was minted somewhere along the route.
    duplicated: bool,
    /// Copies dropped at some hop, any cause.
    dropped: u32,
    /// Of `dropped`, how many were impairment-caused (burst/flap).
    dropped_impair: u32,
    /// Total store-and-forward hops on the route.
    route_hops: usize,
}

/// Walk `wire` bytes down `route` starting at `start`, carrying at most
/// two copies (the original plus one impairment duplicate) across the
/// links. A duplicate minted on one link continues through the rest of
/// the route like any other frame; corruption and reorder marks stick to
/// the copy that earned them.
fn route_walk(links: &mut [PathState], route: &[usize], start: Nanos, wire: u64) -> RouteVerdict {
    let mut v = RouteVerdict {
        deliveries: [None, None],
        duplicated: false,
        dropped: 0,
        dropped_impair: 0,
        route_hops: 0,
    };
    let mut cur: [Option<Delivery>; 2] = [
        Some(Delivery {
            at: start,
            corrupted: false,
            reordered: false,
        }),
        None,
    ];
    for &lid in route {
        v.route_hops += links[lid].hops.len();
        let mut next: [Option<Delivery>; 2] = [None, None];
        let mut filled = 0usize;
        for c in cur.into_iter().flatten() {
            let pv = links[lid].send_verdict(c.at, wire, !v.duplicated);
            v.duplicated |= pv.duplicated;
            v.dropped += pv.dropped;
            v.dropped_impair += pv.dropped_impair;
            for d in pv.deliveries.into_iter().flatten() {
                if filled < 2 {
                    next[filled] = Some(Delivery {
                        at: d.at,
                        corrupted: c.corrupted || d.corrupted,
                        reordered: c.reordered || d.reordered,
                    });
                    filled += 1;
                }
            }
        }
        cur = next;
        if filled == 0 {
            break;
        }
    }
    v.deliveries = cur;
    v
}

/// Stage 3 of transmit: walk the link route (serialization + queueing
/// happens inside the hop states).
fn tx_wire(lab: &mut Lab, eng: &mut LabEngine, f: usize, src_ep: usize, seg: Segment) {
    let now = eng.now();
    let h = lab.flows[f].host[src_ep];
    let dst_ep = 1 - src_ep;
    let wire = tengig_ethernet::Mtu::wire_bytes_for(seg.ip_bytes());
    if let Some(s) = eng.sanitizer_mut() {
        s.inject(wire);
    }
    let v = route_walk(&mut lab.links, &lab.flows[f].route[src_ep], now, wire);
    if let Some(s) = eng.sanitizer_mut() {
        if v.duplicated {
            // The duplicate is a second physical frame on the wire: it
            // enters the ledger here and retires via its own delivery or
            // drop, so byte conservation holds per copy.
            s.inject(wire);
        }
        for _ in 0..v.dropped {
            s.drop_bytes(now, wire);
        }
    }
    let host = &mut lab.hosts[h];
    if v.duplicated {
        host.probe(now, Stage::ImpairDup, seg.seq, wire, Nanos::ZERO);
    }
    for _ in 0..v.dropped {
        host.probe(now, Stage::Drop, seg.seq, seg.len, Nanos::ZERO);
    }
    for _ in 0..v.dropped_impair {
        host.probe(now, Stage::ImpairDrop, seg.seq, seg.len, Nanos::ZERO);
    }
    let mut first = true;
    for d in v.deliveries.into_iter().flatten() {
        let host = &mut lab.hosts[h];
        if first {
            host.probe(now, Stage::Wire, seg.seq, wire, Nanos::ZERO);
            if v.route_hops > 1 {
                // The frame traversed at least one store-and-forward stage.
                host.probe(now, Stage::Switch, seg.seq, wire, Nanos::ZERO);
            }
            first = false;
        }
        if d.reordered {
            host.probe(now, Stage::ImpairReorder, seg.seq, wire, Nanos::ZERO);
        }
        if lab.grid.is_some() {
            // Grid mode: every arrival — local or cross-shard — rides the
            // canonically ordered ingress channel instead of a direct
            // FrameArrival, so application order is shard-count-invariant.
            grid::route_arrival(lab, eng, f, dst_ep, seg, d);
        } else {
            eng.schedule_event_at(
                d.at,
                Ev::FrameArrival {
                    f,
                    ep: dst_ep,
                    seg,
                    corrupted: d.corrupted,
                },
            );
        }
    }
}

/// A frame fully arrived at the destination NIC: rx DMA, then coalescing.
/// A corrupted frame dies here — the MAC verifies the FCS before posting
/// the DMA, so a bad frame never touches the bus, the ring, or TCP; the
/// wire ledger retires its bytes as a drop at arrival time.
fn frame_arrival(
    lab: &mut Lab,
    eng: &mut LabEngine,
    f: usize,
    dst_ep: usize,
    seg: Segment,
    corrupted: bool,
) {
    let now = eng.now();
    let wire = tengig_ethernet::Mtu::wire_bytes_for(seg.ip_bytes());
    let h = lab.flows[f].host[dst_ep];
    if corrupted {
        if let Some(s) = eng.sanitizer_mut() {
            s.drop_bytes(now, wire);
        }
        let host = &mut lab.hosts[h];
        host.rx_crc_drops += 1;
        host.probe(now, Stage::ImpairCorrupt, seg.seq, wire, Nanos::ZERO);
        return;
    }
    if let Some(s) = eng.sanitizer_mut() {
        s.deliver(now, wire);
    }
    let host = &mut lab.hosts[h];
    let frame = HostRt::frame_bytes(&seg);
    // The DMA's memory-bus traffic happens during the PCI-X transfer; both
    // engaged now, DMA complete when both are done.
    let pci_adm = host.pci.admit(now, host.pci_time(frame));
    let bus_adm = host.membus.admit(now, host.rx_dma_bus_time(frame));
    let t_dma = pci_adm.done.max(bus_adm.done);
    host.probe(now, Stage::RxDma, seg.seq, frame, t_dma.saturating_sub(now));
    eng.schedule_event_at(t_dma, Ev::RxDmaDone { f, ep: dst_ep, seg });
}

/// Run the coalescer for a DMA-complete frame on host `h`.
fn coalesce_frame(lab: &mut Lab, eng: &mut LabEngine, h: usize) {
    let now = eng.now();
    let (action, gen) = lab.hosts[h].coalescer.on_frame(now);
    match action {
        CoalesceAction::FireNow => {
            let batch = lab.hosts[h].coalescer.fire_now();
            process_rx_batch(lab, eng, h, batch);
        }
        CoalesceAction::ArmTimer(at) => {
            eng.schedule_event_at(at, Ev::CoalesceTimer { h, gen });
        }
        CoalesceAction::None => {}
    }
}

/// An interrupt fired on host `h` covering `batch` frames: charge the IRQ
/// entry once, then per-frame stack processing; each frame's protocol work
/// completes at its own CPU-admission time.
fn process_rx_batch(lab: &mut Lab, eng: &mut LabEngine, h: usize, batch: u32) {
    let now = eng.now();
    lab.prof.rx_batch.record(u64::from(batch));
    let irq_cpu = lab.hosts[h].irq_cpu();
    let irq = lab.hosts[h].irq_cost();
    lab.hosts[h].cpu.admit_pinned(irq_cpu, now, irq);
    lab.hosts[h].probe(now, Stage::Interrupt, 0, batch as u64, irq);
    for _ in 0..batch {
        let Some(frame) = lab.hosts[h].rx_pending.pop_front() else {
            break;
        };
        match frame {
            RxFrame::Tcp { flow, ep, seg } => {
                let cost = lab.hosts[h].rx_cpu_cost(&seg);
                let done = lab.hosts[h].cpu.admit_pinned(irq_cpu, now, cost).done;
                let stage = if seg.is_pure_ack() {
                    Stage::Ack
                } else {
                    Stage::RxStack
                };
                lab.hosts[h].probe(now, stage, seg.seq, seg.len, cost);
                eng.schedule_event_at(done, Ev::RxStack { f: flow, ep, seg });
            }
            RxFrame::Udp { flow, bytes } => {
                // pktgen sink: count only.
                let _ = (flow, bytes);
            }
        }
    }
}

/// Note newly delivered bytes and (if no read is already in flight)
/// schedule the application's read. The reader loops on `recv`, so all
/// bytes that accumulate while one read executes are drained by the next
/// in a single syscall — syscall and wakeup costs amortize over the batch.
fn schedule_app_read(lab: &mut Lab, eng: &mut LabEngine, f: usize, ep: usize, bytes: u64) {
    lab.flows[f].read_pending[ep] += bytes;
    if !lab.flows[f].read_scheduled[ep] {
        lab.flows[f].read_scheduled[ep] = true;
        eng.schedule_event_now(Ev::AppRead { f, ep, fresh: true });
    }
}

/// Largest single copy-to-user chunk: the kernel yields to softirq work at
/// page-cluster granularity, so one huge read cannot monopolize the CPU —
/// interrupt processing interleaves between chunks.
const READ_CHUNK: u64 = 16_384;

/// Execute one (chunk of a) batched application read. `fresh` marks the
/// first chunk after a wakeup, which pays the syscall + wakeup cost;
/// continuation chunks are pure copy.
fn app_read(lab: &mut Lab, eng: &mut LabEngine, f: usize, ep: usize, fresh: bool) {
    let now = eng.now();
    let pending = lab.flows[f].read_pending[ep];
    if pending == 0 {
        lab.flows[f].read_scheduled[ep] = false;
        return;
    }
    let bytes = pending.min(READ_CHUNK);
    lab.flows[f].read_pending[ep] -= bytes;
    let h = lab.flows[f].host[ep];
    let cpu_idx = lab.hosts[h].app_cpu(f);
    let cpu = &lab.hosts[h].cfg.hw.cpu;
    let cost = if fresh {
        lab.hosts[h].read_cpu_cost(bytes)
    } else {
        cpu.copy_time(bytes)
    };
    let cpu_adm = lab.hosts[h].cpu.admit_pinned(cpu_idx, now, cost);
    // The copy's bus traffic rides along with the copy loop; it charges
    // the shared bus but does not re-gate the reader, which is clocked by
    // CPU availability alone (a recv loop drains as fast as it can copy).
    let bus = lab.hosts[h].read_bus_time(bytes);
    lab.hosts[h].membus.admit(now, bus);
    lab.hosts[h].probe(now, Stage::RxCopy, f as u64, bytes, cost);
    let t2 = cpu_adm.done;
    eng.schedule_event_at(t2, Ev::ReadDone { f, ep, bytes });
}

/// An application read chunk's CPU time completed: free the receive
/// window, react to the delivered bytes, and chain the next chunk if more
/// data accumulated while this one copied.
fn read_done(lab: &mut Lab, eng: &mut LabEngine, f: usize, ep: usize, bytes: u64) {
    let now = eng.now();
    let h = lab.flows[f].host[ep];
    lab.hosts[h].probe(now, Stage::AppRead, f as u64, bytes, Nanos::ZERO);
    let mut acts = lab.take_actions();
    lab.flows[f].conns[ep].on_app_read_into(now, bytes, &mut acts);
    process_actions(lab, eng, f, ep, &mut acts);
    lab.recycle_actions(acts);
    app_on_delivered(lab, eng, f, ep, bytes);
    // Drain anything that arrived while this chunk copied.
    if lab.flows[f].read_pending[ep] > 0 {
        app_read(lab, eng, f, ep, false);
    } else {
        lab.flows[f].read_scheduled[ep] = false;
    }
}

/// Record a flow's completion time and CPU snapshots (idempotent).
fn mark_done(lab: &mut Lab, f: usize, now: Nanos) {
    if lab.flows[f].meas.t_done.is_some() {
        return;
    }
    lab.flows[f].meas.t_done = Some(now);
    for ep in 0..2 {
        let h = lab.flows[f].host[ep];
        lab.flows[f].meas.cpu_busy_end[ep] = lab.hosts[h].hottest_cpu_busy(now);
        lab.flows[f].conns[ep].on_close(now);
    }
}

/// Workload reaction to delivered-and-read data.
fn app_on_delivered(lab: &mut Lab, eng: &mut LabEngine, f: usize, ep: usize, bytes: u64) {
    let now = eng.now();
    let mut write_back: Option<(usize, u64)> = None;
    let mut disk_write: Option<(usize, bool)> = None;
    match &mut lab.flows[f].app {
        App::Nttcp { rx, .. } => {
            if ep == 1 {
                rx.on_delivered(now, bytes);
                if rx.is_done() {
                    mark_done(lab, f, now);
                }
            }
        }
        App::NetPipe(np) => {
            let side = if ep == 1 {
                PingPongSide::Echoer
            } else {
                PingPongSide::Initiator
            };
            if let Some(w) = np.on_delivered(now, side, bytes) {
                write_back = Some((ep, w));
            }
            if np.is_done() {
                mark_done(lab, f, now);
            }
        }
        App::Iperf(ip) => {
            if ep == 1 {
                ip.on_delivered(now, bytes);
                if now >= ip.deadline() {
                    mark_done(lab, f, now);
                }
            }
        }
        App::Pktgen(_) => {}
        App::DiskPipe(dp) => {
            if ep == 1 {
                dp.rx.on_delivered(now, bytes);
                disk_write = Some((dp.stream, dp.rx.is_done()));
            }
        }
    }
    if let Some((wep, w)) = write_back {
        app_write(lab, eng, f, wep, w);
    }
    if let Some((stream, finished)) = disk_write {
        // Write-behind: the delivered batch goes straight onto the
        // destination disk's write lane. The pipeline's true end is the
        // *drain* of that lane, tracked analytically — the flow's network
        // completion (`mark_done`) stays at delivery time, exactly as for
        // NTTCP, and the drain instant rides along in the relay state.
        let h1 = lab.flows[f].host[1];
        let adm = lab.hosts[h1]
            .disk
            .as_mut()
            .expect("a DiskPipe endpoint host has a disk bank attached")
            .write(stream, now, bytes);
        if let App::DiskPipe(dp) = &mut lab.flows[f].app {
            dp.drain_done = dp.drain_done.max(adm.done);
        }
        if finished {
            mark_done(lab, f, now);
        }
    }
}

// ---------------------------------------------------------------------
// pktgen (single-copy, TCP-bypass)
// ---------------------------------------------------------------------

/// One iteration of the kernel packet-generator loop.
fn pktgen_tick(lab: &mut Lab, eng: &mut LabEngine, f: usize) {
    let now = eng.now();
    let h = lab.flows[f].host[0];
    let (ip_bytes, proceed) = match &mut lab.flows[f].app {
        App::Pktgen(pg) => {
            let ip = pg.ip_bytes();
            (ip, pg.next_packet(now))
        }
        _ => (0, false),
    };
    if !proceed {
        return;
    }
    lab.flows[f].meas.t_start.get_or_insert(now);
    let frame = ip_bytes + tengig_ethernet::ETH_HEADER + tengig_ethernet::ETH_FCS;
    let wire = tengig_ethernet::Mtu::wire_bytes_for(ip_bytes);
    if let Some(s) = eng.sanitizer_mut() {
        s.inject(wire);
    }
    let host = &mut lab.hosts[h];
    // Loop CPU cost (single copy: no user copy, pre-formed skb). The CPU
    // runs ahead of the DMA ring, so the loop cost does not gate the PCI
    // admission; ring backpressure below is what throttles the loop.
    let cpu = host.cfg.hw.cpu.plain_time(tengig_tools::pktgen::LOOP_COST);
    let t1 = host.cpu.admit_pinned(0, now, cpu).done;
    // PCI-X, with the DMA's memory-bus traffic concurrent.
    let pci_time = host.pci_time(frame);
    let adm = host.pci.admit(now, pci_time);
    host.membus.admit(now, host.rx_dma_bus_time(frame));
    let t3 = adm.done;
    // Wire.
    let v = route_walk(&mut lab.links, &lab.flows[f].route[0], t3, wire);
    if let Some(s) = eng.sanitizer_mut() {
        if v.duplicated {
            s.inject(wire);
        }
        for _ in 0..v.dropped {
            s.drop_bytes(t3, wire);
        }
    }
    let mut t = t3;
    let mut counted = false;
    let dst_h = lab.flows[f].host[1];
    for d in v.deliveries.into_iter().flatten() {
        t = t.max(d.at);
        if d.corrupted {
            // The sink's NIC discards the bad-FCS frame on arrival.
            if let Some(s) = eng.sanitizer_mut() {
                s.drop_bytes(d.at, wire);
            }
            lab.hosts[dst_h].rx_crc_drops += 1;
        } else {
            // pktgen's sink only counts, so the frame is "delivered" the
            // moment it clears the wire.
            if let Some(s) = eng.sanitizer_mut() {
                s.deliver(d.at, wire);
            }
            if !counted {
                if let App::Pktgen(pg) = &mut lab.flows[f].app {
                    pg.on_wire_done(d.at);
                }
                counted = true;
            }
        }
    }
    // Self-clock: the loop runs ahead until the descriptor ring
    // (RING_DEPTH packets) is full, then blocks on ring space.
    let ring = pci_time * tengig_tools::pktgen::RING_DEPTH as u64;
    let gate = lab.hosts[h].pci.busy_until().saturating_sub(ring);
    let next = t1.max(gate);
    let done = matches!(&lab.flows[f].app, App::Pktgen(pg) if pg.finished());
    if done {
        let t_done = t.max(now);
        mark_done(lab, f, t_done);
    } else {
        eng.schedule_event_at(next, Ev::PktgenTick { f });
    }
}

// ---------------------------------------------------------------------
// results
// ---------------------------------------------------------------------

/// CPU load of flow `f`'s endpoint `ep` over the measurement interval,
/// from the busy snapshots taken at start and completion.
pub fn cpu_load(lab: &Lab, f: usize, ep: usize) -> f64 {
    let m = &lab.flows[f].meas;
    let (Some(start), Some(end)) = (m.t_start, m.t_done) else {
        return 0.0;
    };
    if end <= start {
        return 0.0;
    }
    let busy = m.cpu_busy_end[ep].saturating_sub(m.cpu_busy_start[ep]);
    (busy.as_nanos() as f64 / (end - start).as_nanos() as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LadderRung;
    use tengig_ethernet::Mtu;
    use tengig_net::Hop;
    use tengig_sim::Bandwidth;

    fn b2b_lab(rung: LadderRung, mtu: Mtu, payload: u64, count: u64) -> (Lab, LabEngine) {
        let cfg = rung.pe2650_config(mtu);
        let mut lab = Lab::new();
        let a = lab.add_host(cfg);
        let b = lab.add_host(cfg);
        let path = Path {
            hops: vec![Hop::wire(
                "xover",
                Bandwidth::from_gbps(10),
                Nanos::from_nanos(50),
            )],
        };
        let l_ab = lab.add_link(&path, SimRng::seeded(1));
        let l_ba = lab.add_link(&path, SimRng::seeded(2));
        let total = payload * count;
        lab.add_flow(
            a,
            b,
            vec![l_ab],
            vec![l_ba],
            App::Nttcp {
                tx: NttcpSender::new(payload, count),
                rx: NttcpReceiver::new(total),
            },
        );
        let mut eng = Engine::new();
        eng.event_limit = 50_000_000;
        kick(&mut lab, &mut eng);
        (lab, eng)
    }

    #[test]
    fn small_nttcp_run_completes() {
        let (mut lab, mut eng) = b2b_lab(LadderRung::Stock, Mtu::STANDARD, 1448, 200);
        eng.run(&mut lab);
        assert!(lab.all_done(), "flow must finish");
        let m = lab.flows[0].meas;
        let elapsed = m.t_done.unwrap() - m.t_start.unwrap();
        let gbps = tengig_sim::rate_of(1448 * 200, elapsed).gbps();
        assert!(gbps > 0.3, "throughput {gbps} too low");
        assert!(gbps < 10.0, "throughput {gbps} above line rate");
        assert_eq!(lab.flows[0].conns[0].stats.retransmits, 0);
    }

    #[test]
    fn tuned_beats_stock_for_jumbo() {
        let run = |rung| {
            let (mut lab, mut eng) = b2b_lab(rung, Mtu::JUMBO_9000, 8948, 600);
            eng.run(&mut lab);
            assert!(lab.all_done());
            let m = lab.flows[0].meas;
            tengig_sim::rate_of(8948 * 600, m.t_done.unwrap() - m.t_start.unwrap()).gbps()
        };
        let stock = run(LadderRung::Stock);
        let tuned = run(LadderRung::OversizedWindows);
        assert!(
            tuned > stock * 1.15,
            "tuned {tuned} Gb/s must clearly beat stock {stock} Gb/s"
        );
    }

    #[test]
    fn netpipe_latency_roundtrip() {
        let cfg = LadderRung::Stock.pe2650_config(Mtu::STANDARD);
        let mut lab = Lab::new();
        let a = lab.add_host(cfg);
        let b = lab.add_host(cfg);
        let path = Path {
            hops: vec![Hop::wire(
                "xover",
                Bandwidth::from_gbps(10),
                Nanos::from_nanos(50),
            )],
        };
        let l1 = lab.add_link(&path, SimRng::seeded(1));
        let l2 = lab.add_link(&path, SimRng::seeded(2));
        lab.add_flow(a, b, vec![l1], vec![l2], App::NetPipe(NetPipe::new(1, 20)));
        let mut eng = Engine::new();
        kick(&mut lab, &mut eng);
        eng.run(&mut lab);
        assert!(lab.all_done());
        let App::NetPipe(np) = &lab.flows[0].app else {
            panic!()
        };
        let lat = np.one_way_latency().as_micros_f64();
        // Calibration target is 19 µs; insist on the right ballpark here.
        assert!((10.0..40.0).contains(&lat), "one-way latency {lat} µs");
    }

    #[test]
    fn pktgen_reaches_multi_gigabit() {
        let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
        let mut lab = Lab::new();
        let a = lab.add_host(cfg);
        let b = lab.add_host(cfg);
        let path = Path {
            hops: vec![Hop::wire(
                "xover",
                Bandwidth::from_gbps(10),
                Nanos::from_nanos(50),
            )],
        };
        let l1 = lab.add_link(&path, SimRng::seeded(1));
        let l2 = lab.add_link(&path, SimRng::seeded(2));
        lab.add_flow(
            a,
            b,
            vec![l1],
            vec![l2],
            App::Pktgen(Pktgen::new(8132, 3000)),
        );
        let mut eng = Engine::new();
        kick(&mut lab, &mut eng);
        eng.run(&mut lab);
        assert!(lab.all_done());
        let App::Pktgen(pg) = &lab.flows[0].app else {
            panic!()
        };
        let gbps = pg.throughput().gbps();
        assert!(
            (4.0..7.0).contains(&gbps),
            "pktgen {gbps} Gb/s (paper: 5.5)"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let (mut lab, mut eng) = b2b_lab(LadderRung::Stock, Mtu::STANDARD, 1000, 150);
            eng.run(&mut lab);
            let m = lab.flows[0].meas;
            (m.t_start.unwrap(), m.t_done.unwrap(), eng.executed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cpu_load_measured() {
        let (mut lab, mut eng) = b2b_lab(LadderRung::Stock, Mtu::STANDARD, 1448, 500);
        eng.run(&mut lab);
        let rx_load = cpu_load(&lab, 0, 1);
        assert!(rx_load > 0.2, "receiver load {rx_load}");
        assert!(rx_load <= 1.0);
    }
}
