//! Sharded ("grid") execution of a laboratory.
//!
//! A grid run follows **replicated construction, partitioned
//! execution**: every shard builds the *identical* full [`Lab`] (same
//! topology, same seeds, same RNG forks, byte for byte) but executes
//! only the events whose endpoint host it owns. Remote hosts' state sits
//! in the replica untouched — stale by design — and the experiment layer
//! merges per-flow results by reading each value from the shard that
//! owns the host that produced it.
//!
//! Determinism is anchored in the **canonically ordered ingress
//! channel**: in grid mode *every* wire arrival — local or cross-shard —
//! is inserted into a per-destination-host `BTreeMap` keyed by
//! `(arrival time, canonical key)` and applied by a front-class
//! [`Ev::IngressDrain`] event. The canonical key is minted from a
//! per-(flow, endpoint) emission counter on the transmitting shard, so
//! it is a pure function of the simulation's own history, never of
//! thread interleaving; the `BTreeMap` makes insertion order irrelevant.
//! Front-class draining ([`tengig_sim::Calendar::schedule_front`])
//! guarantees a merged batch is applied before any normal event of the
//! same instant, whichever shard count produced it — so sweep JSONL is
//! byte-identical at 1, 2, and N shards.
//!
//! Partition-safety rule: a link may only be shared by flows whose
//! *transmitting* hosts live on the same shard (the grid experiment
//! family uses per-flow private directional links, which satisfies this
//! trivially). Same-instant events on different hosts then touch
//! disjoint state, so the cross-host seq-order differences between shard
//! counts cannot be observed.

use super::{frame_arrival, Ev, Lab, LabEngine};
use std::collections::BTreeMap;
use tengig_net::Delivery;
use tengig_sim::{Hist, Nanos, ShardWorld};
use tengig_tcp::Segment;

/// One wire arrival traveling through the ingress channel.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Flow index.
    pub f: usize,
    /// Receiving endpoint.
    pub ep: usize,
    /// The segment in flight.
    pub seg: Segment,
    /// The frame was bit-corrupted en route.
    pub corrupted: bool,
}

/// A cross-shard message: an arrival bound for a host another shard owns.
#[derive(Debug, Clone, Copy)]
pub struct GridMsg {
    /// Destination host (owned by the receiving shard).
    pub h: usize,
    /// Canonical channel key (see [`GridRt::next_key`]).
    pub key: u64,
    /// The arrival itself.
    pub arr: Arrival,
}

/// Per-shard grid runtime: the ownership map, the canonical key mint,
/// the ordered ingress channel, and the cross-shard outbox.
#[derive(Debug)]
pub struct GridRt {
    /// Total shard count.
    pub shards: usize,
    /// This replica's shard id.
    pub shard: usize,
    /// Owning shard per host index.
    pub owner: Vec<usize>,
    /// Per-(flow, endpoint) emission counters for canonical keys. The
    /// counter advances only on the shard owning the transmitting host,
    /// in virtual-time order — identical at any shard count.
    emit: Vec<[u64; 2]>,
    /// Ordered ingress channel, one map per owned host (remote hosts'
    /// maps stay empty): `(arrival time, canonical key) -> arrival`.
    inbox: Vec<BTreeMap<(Nanos, u64), Arrival>>,
    /// Messages bound for other shards, drained by [`ShardWorld::flush`].
    outbox: Vec<(usize, Nanos, GridMsg)>,
    /// Cross-shard messages this shard emitted (deterministic, but a
    /// function of the partition — zero at one shard — so it lives in the
    /// per-shard "local" profiling section, never the gated one).
    pub msgs_sent: u64,
    /// Arrivals applied per [`Ev::IngressDrain`] batch, log-bucketed.
    /// Batches are per (host, instant) with shard-count-invariant
    /// contents, so the shard-merged histogram is gate-safe.
    pub drain_batch: Hist,
    /// Conservative synchronization windows this shard executed
    /// (per-shard deterministic; varies with shard count and lookahead).
    pub windows: u64,
}

impl GridRt {
    /// Grid runtime for shard `shard` of `shards`, with `owner[h]` the
    /// owning shard of host `h` and `flows` the lab's flow count.
    pub fn new(shards: usize, shard: usize, owner: Vec<usize>, flows: usize) -> Self {
        assert!(shards > 0, "a grid needs at least one shard");
        assert!(shard < shards, "shard id out of range");
        assert!(owner.iter().all(|&o| o < shards), "host owner out of range");
        let hosts = owner.len();
        GridRt {
            shards,
            shard,
            owner,
            emit: vec![[0; 2]; flows],
            inbox: (0..hosts).map(|_| BTreeMap::new()).collect(),
            outbox: Vec::new(),
            msgs_sent: 0,
            drain_batch: Hist::new(),
            windows: 0,
        }
    }

    /// Whether this shard owns host `h`.
    #[inline]
    pub fn owns(&self, h: usize) -> bool {
        self.owner[h] == self.shard
    }

    /// Mint the canonical channel key for the next delivery emitted by
    /// flow `f`'s endpoint `src_ep`: `(f << 32) | (src_ep << 31) | n`
    /// with `n` the per-(flow, endpoint) emission ordinal. Keys are
    /// unique by construction (each (f, ep) mints its own ordinals) and
    /// shard-count-invariant (the mint happens on the one shard that
    /// executes the emission, in virtual-time order).
    fn next_key(&mut self, f: usize, src_ep: usize) -> u64 {
        let n = self.emit[f][src_ep];
        self.emit[f][src_ep] += 1;
        debug_assert!(n < 1 << 31, "emission ordinal overflow");
        ((f as u64) << 32) | ((src_ep as u64) << 31) | n
    }

    /// Insert an arrival into host `h`'s channel. Returns `true` when it
    /// is the first pending arrival at that instant — the caller must
    /// then schedule the (single) front-class drain for `(h, at)`.
    fn insert(&mut self, h: usize, at: Nanos, key: u64, arr: Arrival) -> bool {
        debug_assert!(self.owns(h), "arrival inserted on a non-owning shard");
        let fresh = self.inbox[h]
            .range((at, 0)..=(at, u64::MAX))
            .next()
            .is_none();
        let prev = self.inbox[h].insert((at, key), arr);
        debug_assert!(prev.is_none(), "canonical channel key collided");
        fresh
    }

    /// Remove and return every arrival pending for host `h` at `now`, in
    /// canonical key order.
    fn take_instant(&mut self, h: usize, now: Nanos) -> Vec<Arrival> {
        let mut batch = Vec::new();
        while let Some((&k, _)) = self.inbox[h].range((now, 0)..=(now, u64::MAX)).next() {
            let arr = self.inbox[h].remove(&k).expect("key just observed");
            batch.push(arr);
        }
        batch
    }
}

/// Route one wire delivery through the ingress channel: an arrival for
/// an owned host goes straight into the local channel (and schedules its
/// instant's front-class drain); an arrival for a remote host retires
/// its bytes from this shard's conservation ledger and rides the outbox
/// to the owning shard. Called from `tx_wire` in place of scheduling
/// `Ev::FrameArrival` directly.
pub(super) fn route_arrival(
    lab: &mut Lab,
    eng: &mut LabEngine,
    f: usize,
    dst_ep: usize,
    seg: Segment,
    d: Delivery,
) {
    let now = eng.now();
    let dst_host = lab.flows[f].host[dst_ep];
    let src_ep = 1 - dst_ep;
    let grid = lab.grid.as_mut().expect("route_arrival outside grid mode");
    let key = grid.next_key(f, src_ep);
    let arr = Arrival {
        f,
        ep: dst_ep,
        seg,
        corrupted: d.corrupted,
    };
    debug_assert!(d.at > now, "wire delivery cannot be instantaneous");
    if grid.owns(dst_host) {
        if grid.insert(dst_host, d.at, key, arr) {
            eng.schedule_front_at(d.at, Ev::IngressDrain { h: dst_host });
        }
    } else {
        let dst_shard = grid.owner[dst_host];
        grid.msgs_sent += 1;
        grid.outbox.push((
            dst_shard,
            d.at,
            GridMsg {
                h: dst_host,
                key,
                arr,
            },
        ));
        // Byte-conservation handoff: the frame leaves this shard's
        // ledger here and re-enters the owning shard's at accept time.
        let wire = tengig_ethernet::Mtu::wire_bytes_for(seg.ip_bytes());
        if let Some(s) = eng.sanitizer_mut() {
            s.deliver(now, wire);
        }
    }
}

/// Fire the front-class drain for host `h` at the current instant: apply
/// every pending arrival in canonical key order, before any normal event
/// of this instant runs.
pub(super) fn ingress_drain(lab: &mut Lab, eng: &mut LabEngine, h: usize) {
    let now = eng.now();
    let grid = lab.grid.as_mut().expect("ingress drain outside grid mode");
    let batch = grid.take_instant(h, now);
    debug_assert!(!batch.is_empty(), "drain fired with nothing pending");
    grid.drain_batch.record(batch.len() as u64);
    for a in batch {
        frame_arrival(lab, eng, a.f, a.ep, a.seg, a.corrupted);
    }
}

/// One shard of a grid run: a full lab replica plus its engine,
/// executing only the events of the hosts it owns.
pub struct GridShard {
    /// The replicated world.
    pub lab: Lab,
    /// This shard's calendar.
    pub eng: LabEngine,
}

impl ShardWorld for GridShard {
    type Msg = GridMsg;

    fn next_time(&mut self) -> Option<Nanos> {
        self.eng.peek_time()
    }

    fn run_window(&mut self, end: Nanos) {
        let grid = self.lab.grid.as_mut().expect("grid shard without grid");
        grid.windows += 1;
        self.eng.run_before(&mut self.lab, end);
    }

    fn flush(&mut self) -> Vec<(usize, Nanos, GridMsg)> {
        let grid = self.lab.grid.as_mut().expect("grid shard without grid");
        std::mem::take(&mut grid.outbox)
    }

    fn accept(&mut self, at: Nanos, msg: GridMsg) {
        // The frame enters this shard's conservation ledger as it
        // crosses the shard boundary (the sender retired it from its
        // own ledger on emission).
        let wire = tengig_ethernet::Mtu::wire_bytes_for(msg.arr.seg.ip_bytes());
        if let Some(s) = self.eng.sanitizer_mut() {
            s.inject(wire);
        }
        let grid = self.lab.grid.as_mut().expect("grid shard without grid");
        if grid.insert(msg.h, at, msg.key, msg.arr) {
            self.eng
                .schedule_front_at(at, Ev::IngressDrain { h: msg.h });
        }
        // A message landing on a drained shard restarts its dormant
        // observability sampling chain (no-op when obs is off or armed).
        super::obs_revive(&mut self.lab, &mut self.eng, at);
    }
}
