//! Experiment configuration: one struct holding every knob the paper turns,
//! plus named presets for each rung of the §3.3 optimization ladder.

use tengig_ethernet::Mtu;
use tengig_hw::{HostSpec, KernelMode};
use tengig_nic::NicSpec;
use tengig_sim::Nanos;
use tengig_tcp::Sysctls;

/// A complete host-side configuration: hardware + adapter + stack tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Hardware description.
    pub hw: HostSpec,
    /// Adapter description.
    pub nic: NicSpec,
    /// Stack tuning.
    pub sysctls: Sysctls,
}

impl HostConfig {
    /// Apply one tuning step, returning the modified config.
    pub fn tuned(mut self, step: TuningStep) -> Self {
        match step {
            TuningStep::Mmrbc(v) => self.hw = self.hw.with_mmrbc(v),
            TuningStep::Kernel(k) => self.hw = self.hw.with_kernel(k),
            TuningStep::Buffers(b) => self.sysctls = self.sysctls.with_buffers(b),
            TuningStep::Mtu(m) => self.sysctls = self.sysctls.with_mtu(m),
            TuningStep::Coalescing(d) => self.nic = self.nic.with_coalescing(d),
            TuningStep::Timestamps(t) => self.sysctls = self.sysctls.with_timestamps(t),
            TuningStep::Txqueuelen(l) => self.sysctls = self.sysctls.with_txqueuelen(l),
        }
        self
    }
}

/// One tuning action from the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuningStep {
    /// Set the PCI-X maximum memory read byte count register.
    Mmrbc(u64),
    /// Boot a different kernel flavour.
    Kernel(KernelMode),
    /// Set socket buffer sizes (`tcp_rmem`/`tcp_wmem`).
    Buffers(u64),
    /// Set the interface MTU.
    Mtu(Mtu),
    /// Set the adapter's interrupt-coalescing delay.
    Coalescing(Nanos),
    /// Enable/disable RFC 1323 timestamps.
    Timestamps(bool),
    /// Set the device transmit queue length.
    Txqueuelen(u64),
}

/// The §3.3 optimization ladder, in the paper's order. Each rung names the
/// configuration used for one curve/measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Stock Dell PE2650: SMP kernel, MMRBC 512, default windows.
    Stock,
    /// + MMRBC 4096.
    PciBurst,
    /// + uniprocessor kernel.
    Uniprocessor,
    /// + 256 KB socket buffers ("oversized windows").
    OversizedWindows,
    /// + 8160-byte MTU (single 8 KiB block per frame).
    Mtu8160,
    /// + 16000-byte MTU (largest the adapter supports).
    Mtu16000,
}

impl LadderRung {
    /// All rungs in paper order.
    pub const ALL: [LadderRung; 6] = [
        LadderRung::Stock,
        LadderRung::PciBurst,
        LadderRung::Uniprocessor,
        LadderRung::OversizedWindows,
        LadderRung::Mtu8160,
        LadderRung::Mtu16000,
    ];

    /// The figure-legend style label for this rung at a given MTU.
    pub fn label(&self, mtu: Mtu) -> String {
        let m = mtu.get();
        match self {
            LadderRung::Stock => format!("{m}MTU,SMP,512PCI"),
            LadderRung::PciBurst => format!("{m}MTU,SMP,4096PCI"),
            LadderRung::Uniprocessor => format!("{m}MTU,UP,4096PCI"),
            LadderRung::OversizedWindows => format!("{m}MTU,UP,4096PCI,256kbuf"),
            LadderRung::Mtu8160 => "8160MTU,UP,4096PCI,256kbuf".to_string(),
            LadderRung::Mtu16000 => "16000MTU,UP,4096PCI,256kbuf".to_string(),
        }
    }

    /// Build the PE2650 host configuration for this rung with the given
    /// base MTU (the MTU rungs override it).
    pub fn pe2650_config(&self, mtu: Mtu) -> HostConfig {
        let base = HostConfig {
            hw: HostSpec::pe2650(),
            nic: NicSpec::intel_pro_10gbe(),
            sysctls: Sysctls::linux24_defaults().with_mtu(mtu),
        };
        match self {
            LadderRung::Stock => base,
            LadderRung::PciBurst => base.tuned(TuningStep::Mmrbc(4096)),
            LadderRung::Uniprocessor => base
                .tuned(TuningStep::Mmrbc(4096))
                .tuned(TuningStep::Kernel(KernelMode::Uniprocessor)),
            LadderRung::OversizedWindows => base
                .tuned(TuningStep::Mmrbc(4096))
                .tuned(TuningStep::Kernel(KernelMode::Uniprocessor))
                .tuned(TuningStep::Buffers(256 * 1024)),
            LadderRung::Mtu8160 => base
                .tuned(TuningStep::Mmrbc(4096))
                .tuned(TuningStep::Kernel(KernelMode::Uniprocessor))
                .tuned(TuningStep::Buffers(256 * 1024))
                .tuned(TuningStep::Mtu(Mtu::TUNED_8160)),
            LadderRung::Mtu16000 => base
                .tuned(TuningStep::Mmrbc(4096))
                .tuned(TuningStep::Kernel(KernelMode::Uniprocessor))
                .tuned(TuningStep::Buffers(256 * 1024))
                .tuned(TuningStep::Mtu(Mtu::MAX_INTEL_16000)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let stock = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
        assert_eq!(stock.hw.pci.mmrbc, 512);
        assert_eq!(stock.hw.cpu.kernel, KernelMode::Smp);
        let up = LadderRung::Uniprocessor.pe2650_config(Mtu::JUMBO_9000);
        assert_eq!(up.hw.pci.mmrbc, 4096, "UP rung keeps the PCI tuning");
        assert_eq!(up.hw.cpu.kernel, KernelMode::Uniprocessor);
        let win = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
        assert_eq!(win.sysctls.tcp_rmem.default, 262_144);
        let m8 = LadderRung::Mtu8160.pe2650_config(Mtu::JUMBO_9000);
        assert_eq!(m8.sysctls.mtu, Mtu::TUNED_8160);
        assert_eq!(
            m8.sysctls.tcp_rmem.default, 262_144,
            "MTU rung keeps buffers"
        );
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            LadderRung::Stock.label(Mtu::JUMBO_9000),
            "9000MTU,SMP,512PCI"
        );
        assert_eq!(
            LadderRung::OversizedWindows.label(Mtu::STANDARD),
            "1500MTU,UP,4096PCI,256kbuf"
        );
    }

    #[test]
    fn tuning_steps_compose() {
        let cfg = HostConfig {
            hw: HostSpec::pe2650(),
            nic: NicSpec::intel_pro_10gbe(),
            sysctls: Sysctls::linux24_defaults(),
        }
        .tuned(TuningStep::Coalescing(Nanos::ZERO))
        .tuned(TuningStep::Timestamps(false))
        .tuned(TuningStep::Txqueuelen(10_000));
        assert_eq!(cfg.nic.rx_coalesce_delay, Nanos::ZERO);
        assert!(!cfg.sysctls.timestamps);
        assert_eq!(cfg.sysctls.txqueuelen, 10_000);
    }
}
