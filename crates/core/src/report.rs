//! Rendering: fixed-width tables and gnuplot-style series dumps, the
//! paper-vs-measured comparison rows used by `EXPERIMENTS.md` and the
//! benches, and the line-oriented JSON sweep reports emitted by the sweep
//! runner.

use std::fmt;
use std::fmt::Write as _;
use tengig_sim::stats::Series;
use tengig_sim::Nanos;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// The laboratory's measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Comparison {
    /// Relative error of the measurement against the paper's value.
    pub fn rel_error(&self) -> f64 {
        if self.paper == 0.0 {
            return 0.0;
        }
        (self.measured - self.paper) / self.paper
    }

    /// Whether the measurement falls within `tol` relative error.
    pub fn within(&self, tol: f64) -> bool {
        self.rel_error().abs() <= tol
    }
}

/// Render a set of comparisons as a table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let mut t = Table::new(title, &["metric", "paper", "measured", "error"]);
    for c in rows {
        t.row(vec![
            c.name.clone(),
            format!("{:.3} {}", c.paper, c.unit),
            format!("{:.3} {}", c.measured, c.unit),
            format!("{:+.1}%", c.rel_error() * 100.0),
        ]);
    }
    t.render()
}

/// Render a figure as gnuplot-style columns, one block per series.
pub fn figure(title: &str, series: &[Series]) -> String {
    let mut out = format!("## {title}\n");
    for s in series {
        let _ = write!(out, "{s}");
        out.push('\n');
    }
    out
}

/// Human-friendly duration for Table 1 ("1 hr 42 min" style).
pub fn humanize(d: Nanos) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 60.0 {
        format!("{s:.1} s")
    } else if s < 3600.0 {
        format!("{:.0} min", s / 60.0)
    } else {
        let h = (s / 3600.0).floor();
        let m = ((s - h * 3600.0) / 60.0).round();
        format!("{h:.0} hr {m:.0} min")
    }
}

/// A JSON value for the hand-rolled sweep-report writer. Object keys keep
/// their insertion order, so serialization is byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (counts, seeds, sizes).
    U64(u64),
    /// A floating-point number; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with ordered keys.
    Object(Vec<(String, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display is deterministic,
                    // which is what the byte-identical-report contract
                    // needs. Integral floats print without a fraction
                    // (`2` for 2.0) — still a valid JSON number.
                    write!(f, "{x}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => f.write_char(c)?,
                    }
                }
                f.write_str("\"")
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// One scenario's measurements in a [`SweepReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Scenario index in the sweep grid.
    pub index: usize,
    /// Scenario label.
    pub label: String,
    /// The scenario's RNG seed.
    pub seed: u64,
    /// Named measurements, in emission order.
    pub values: Vec<(String, Json)>,
}

/// A machine-readable sweep result: serialized as line-oriented JSON
/// (one header line, then one line per scenario, in scenario order).
///
/// Serialization is byte-deterministic for a given report, which is the
/// contract the sweep runner's determinism test pins down: the same sweep
/// run on 1 thread and on N threads must yield identical bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (e.g. `fig3_stock_throughput`).
    pub name: String,
    /// The master seed the scenario seeds were derived from.
    pub master_seed: u64,
    /// Per-scenario rows, in scenario order.
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// New empty report.
    pub fn new(name: impl Into<String>, master_seed: u64) -> Self {
        SweepReport {
            name: name.into(),
            master_seed,
            rows: Vec::new(),
        }
    }

    /// Append one scenario's measurements.
    pub fn push_row(
        &mut self,
        index: usize,
        label: impl Into<String>,
        seed: u64,
        values: Vec<(String, Json)>,
    ) {
        self.rows.push(SweepRow {
            index,
            label: label.into(),
            seed,
            values,
        });
    }

    /// Serialize as JSON lines: a header object, then one object per row.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::Object(vec![
            ("sweep".to_string(), Json::from(self.name.as_str())),
            ("master_seed".to_string(), Json::U64(self.master_seed)),
            ("rows".to_string(), Json::U64(self.rows.len() as u64)),
        ]);
        let _ = writeln!(out, "{header}");
        for row in &self.rows {
            let mut fields = vec![
                ("index".to_string(), Json::U64(row.index as u64)),
                ("label".to_string(), Json::from(row.label.as_str())),
                ("seed".to_string(), Json::U64(row.seed)),
            ];
            fields.extend(row.values.iter().cloned());
            let _ = writeln!(out, "{}", Json::Object(fields));
        }
        out
    }
}

/// The opt-in metrics side-channel of a sweep: one timelines JSONL
/// document per scenario, collected alongside — and strictly outside — the
/// primary [`SweepReport`], so enabling metrics can never change a byte of
/// the report itself. Callers write each run's document to its own file
/// (see [`MetricsSidecar::file_name`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSidecar {
    /// The sweep this sidecar belongs to.
    pub sweep: String,
    /// Per-scenario `(index, label, timelines JSONL)`, in scenario order.
    pub runs: Vec<(usize, String, String)>,
}

impl MetricsSidecar {
    /// New empty sidecar for a sweep.
    pub fn new(sweep: impl Into<String>) -> Self {
        MetricsSidecar {
            sweep: sweep.into(),
            runs: Vec::new(),
        }
    }

    /// Append one scenario's timelines document.
    pub fn push(&mut self, index: usize, label: String, timelines_jsonl: String) {
        self.runs.push((index, label, timelines_jsonl));
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the sidecar is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Deterministic file name for one run's document:
    /// `<sweep>.obs.<index>.jsonl`, with the sweep name sanitized to
    /// `[A-Za-z0-9._-]` so it is always a single path component.
    pub fn file_name(&self, index: usize) -> String {
        let safe: String = self
            .sweep
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}.obs.{index}.jsonl")
    }

    /// Concatenate every run's document (each already line-oriented) for
    /// single-file transports; run order is scenario order.
    pub fn concatenated(&self) -> String {
        let mut out = String::new();
        for (_, _, doc) in &self.runs {
            out.push_str(doc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn comparison_math() {
        let c = Comparison {
            name: "peak".into(),
            paper: 4.11,
            measured: 4.06,
            unit: "Gb/s",
        };
        assert!(c.within(0.05));
        assert!(!c.within(0.001));
        assert!(c.rel_error() < 0.0);
        let table = comparison_table("t", &[c]);
        assert!(table.contains("peak"));
        assert!(table.contains("%"));
    }

    #[test]
    fn humanize_formats() {
        assert_eq!(humanize(Nanos::from_millis(4)), "4.0 ms");
        assert_eq!(humanize(Nanos::from_secs(30)), "30.0 s");
        assert_eq!(humanize(Nanos::from_secs(17 * 60)), "17 min");
        assert_eq!(humanize(Nanos::from_secs(6164)), "1 hr 43 min");
    }

    #[test]
    fn json_serialization_is_exact() {
        let v = Json::Object(vec![
            ("s".to_string(), Json::from("a\"b\\c\nd")),
            ("n".to_string(), Json::U64(42)),
            ("x".to_string(), Json::F64(2.5)),
            ("whole".to_string(), Json::F64(2.0)),
            ("nan".to_string(), Json::F64(f64::NAN)),
            ("flag".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            (
                "arr".to_string(),
                Json::Array(vec![Json::U64(1), Json::U64(2)]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"s":"a\"b\\c\nd","n":42,"x":2.5,"whole":2,"nan":null,"flag":true,"none":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn sweep_report_jsonl_shape() {
        let mut r = SweepReport::new("demo", 7);
        r.push_row(0, "p1", 11, vec![("mbps".to_string(), Json::F64(1234.5))]);
        r.push_row(1, "p2", 12, vec![("mbps".to_string(), Json::F64(2345.0))]);
        let text = r.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], r#"{"sweep":"demo","master_seed":7,"rows":2}"#);
        assert_eq!(
            lines[1],
            r#"{"index":0,"label":"p1","seed":11,"mbps":1234.5}"#
        );
        assert_eq!(
            lines[2],
            r#"{"index":1,"label":"p2","seed":12,"mbps":2345}"#
        );
    }

    #[test]
    fn figure_contains_all_series() {
        let mut s1 = Series::new("curve-a");
        s1.push(1.0, 2.0);
        let mut s2 = Series::new("curve-b");
        s2.push(1.0, 3.0);
        let f = figure("Fig. 3", &[s1, s2]);
        assert!(f.contains("curve-a") && f.contains("curve-b"));
    }
}
