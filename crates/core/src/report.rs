//! Rendering: fixed-width tables and gnuplot-style series dumps, plus the
//! paper-vs-measured comparison rows used by `EXPERIMENTS.md` and the
//! benches.

use std::fmt::Write as _;
use tengig_sim::stats::Series;
use tengig_sim::Nanos;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// The laboratory's measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Comparison {
    /// Relative error of the measurement against the paper's value.
    pub fn rel_error(&self) -> f64 {
        if self.paper == 0.0 {
            return 0.0;
        }
        (self.measured - self.paper) / self.paper
    }

    /// Whether the measurement falls within `tol` relative error.
    pub fn within(&self, tol: f64) -> bool {
        self.rel_error().abs() <= tol
    }
}

/// Render a set of comparisons as a table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let mut t = Table::new(title, &["metric", "paper", "measured", "error"]);
    for c in rows {
        t.row(vec![
            c.name.clone(),
            format!("{:.3} {}", c.paper, c.unit),
            format!("{:.3} {}", c.measured, c.unit),
            format!("{:+.1}%", c.rel_error() * 100.0),
        ]);
    }
    t.render()
}

/// Render a figure as gnuplot-style columns, one block per series.
pub fn figure(title: &str, series: &[Series]) -> String {
    let mut out = format!("## {title}\n");
    for s in series {
        let _ = write!(out, "{s}");
        out.push('\n');
    }
    out
}

/// Human-friendly duration for Table 1 ("1 hr 42 min" style).
pub fn humanize(d: Nanos) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 60.0 {
        format!("{s:.1} s")
    } else if s < 3600.0 {
        format!("{:.0} min", s / 60.0)
    } else {
        let h = (s / 3600.0).floor();
        let m = ((s - h * 3600.0) / 60.0).round();
        format!("{h:.0} hr {m:.0} min")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn comparison_math() {
        let c = Comparison { name: "peak".into(), paper: 4.11, measured: 4.06, unit: "Gb/s" };
        assert!(c.within(0.05));
        assert!(!c.within(0.001));
        assert!(c.rel_error() < 0.0);
        let table = comparison_table("t", &[c]);
        assert!(table.contains("peak"));
        assert!(table.contains("%"));
    }

    #[test]
    fn humanize_formats() {
        assert_eq!(humanize(Nanos::from_millis(4)), "4.0 ms");
        assert_eq!(humanize(Nanos::from_secs(30)), "30.0 s");
        assert_eq!(humanize(Nanos::from_secs(17 * 60)), "17 min");
        assert_eq!(humanize(Nanos::from_secs(6164)), "1 hr 43 min");
    }

    #[test]
    fn figure_contains_all_series() {
        let mut s1 = Series::new("curve-a");
        s1.push(1.0, 2.0);
        let mut s2 = Series::new("curve-b");
        s2.push(1.0, 3.0);
        let f = figure("Fig. 3", &[s1, s2]);
        assert!(f.contains("curve-a") && f.contains("curve-b"));
    }
}
