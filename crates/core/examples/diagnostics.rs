//! Laboratory diagnostics: per-rung throughput with connection and
//! resource internals (cwnd, RTT, limit counters, server utilizations) —
//! the tool used to calibrate the model against the paper.
//!
//! ```text
//! cargo run --release -p tengig --example diagnostics
//! ```

use tengig::config::LadderRung;
use tengig::experiments::{b2b_lab, run_to_completion};
use tengig::lab::App;
use tengig_ethernet::Mtu;
use tengig_tools::{NttcpReceiver, NttcpSender};

fn detail(rung: LadderRung, mtu: Mtu, payload: u64, count: u64) {
    let cfg = rung.pe2650_config(mtu);
    let app = App::Nttcp {
        tx: NttcpSender::new(payload, count),
        rx: NttcpReceiver::new(payload * count),
    };
    let (mut lab, mut eng) = b2b_lab(cfg, app, 7);
    run_to_completion(&mut lab, &mut eng);
    let m = lab.flows[0].meas;
    let el = m.t_done.unwrap() - m.t_start.unwrap();
    let gbps = tengig_sim::rate_of(payload * count, el).gbps();
    let c = &lab.flows[0].conns[0];
    let end = m.t_done.unwrap();
    println!("{:32} p={:5} {:6.3} Gb/s | cwnd={:3} srtt={} rwnd_lim={} cwnd_lim={} rtx={} | txcpu={:.2} rxcpu={:.2} | txpci u={:.2} rxpci u={:.2} txmem u={:.2} rxmem u={:.2}",
        rung.label(mtu), payload, gbps,
        c.cc.cwnd, c.srtt().map(|s| s.to_string()).unwrap_or_default(),
        c.stats.rwnd_limited, c.stats.cwnd_limited, c.stats.retransmits,
        tengig::lab::cpu_load(&lab,0,0), tengig::lab::cpu_load(&lab,0,1),
        lab.hosts[0].pci.utilization(end), lab.hosts[1].pci.utilization(end),
        lab.hosts[0].membus.utilization(end), lab.hosts[1].membus.utilization(end));
}

fn main() {
    for (rung, mtu, p) in [
        (LadderRung::Stock, Mtu::STANDARD, 1448),
        (LadderRung::Stock, Mtu::JUMBO_9000, 8948),
        (LadderRung::PciBurst, Mtu::JUMBO_9000, 8948),
        (LadderRung::Uniprocessor, Mtu::STANDARD, 1448),
        (LadderRung::Uniprocessor, Mtu::JUMBO_9000, 8948),
        (LadderRung::OversizedWindows, Mtu::STANDARD, 1448),
        (LadderRung::OversizedWindows, Mtu::JUMBO_9000, 8948),
        (LadderRung::Mtu8160, Mtu::JUMBO_9000, 8108),
        (LadderRung::Mtu16000, Mtu::JUMBO_9000, 15948),
    ] {
        detail(rung, mtu, p, 4000);
    }
    // latency probe
    use tengig::experiments::latency::{netpipe_point, without_coalescing};
    let base = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    println!("lat b2b 1B    : {}", netpipe_point(base, 1, false));
    println!("lat sw  1B    : {}", netpipe_point(base, 1, true));
    println!("lat b2b 1024B : {}", netpipe_point(base, 1024, false));
    println!(
        "lat b2b nocoal: {}",
        netpipe_point(without_coalescing(base), 1, false)
    );
    // pktgen
    let pg = tengig::experiments::throughput::pktgen_run(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        8132,
        5000,
    );
    println!("pktgen: {:.3} Gb/s {:.0} pps", pg.gbps, pg.pps);
}
