//! Run the full calibration battery and print paper-vs-measured rows.
use tengig::calib::run_calibration;
use tengig::report::comparison_table;

fn main() {
    let targets = run_calibration();
    let rows: Vec<_> = targets.iter().map(|t| t.cmp.clone()).collect();
    println!(
        "{}",
        comparison_table("Calibration: paper vs laboratory", &rows)
    );
    let mut fails = 0;
    for t in &targets {
        if !t.pass() {
            fails += 1;
            println!(
                "OUT-OF-BAND: {} ({:+.1}% vs tolerance ±{:.0}%)",
                t.cmp.name,
                t.cmp.rel_error() * 100.0,
                t.tol * 100.0
            );
        }
    }
    println!(
        "\n{} targets, {} within tolerance",
        targets.len(),
        targets.len() - fails
    );
}
