//! Property tests for the host-hardware models.

use proptest::prelude::*;
use tengig_hw::{BlockAllocator, CpuSpec, HostSpec, KernelMode, PcixSpec};

proptest! {
    /// The allocator always returns a power-of-2 block at least as large as
    /// the request, and truesize strictly exceeds the block content.
    #[test]
    fn allocator_blocks_are_powers_of_two(bytes in 0u64..1_000_000) {
        let block = BlockAllocator::block_size(bytes);
        prop_assert!(block.is_power_of_two());
        prop_assert!(block >= bytes.max(1));
        // Minimal: halving the block (if possible) would not fit.
        if block > 256 {
            prop_assert!(block / 2 < bytes.max(1) || block == 256);
        }
        prop_assert!(BlockAllocator::truesize(bytes) > block);
        prop_assert_eq!(BlockAllocator::waste(bytes), block - bytes);
    }

    /// Allocation cost is monotone in request size.
    #[test]
    fn alloc_cost_monotone(a in 1u64..100_000, b in 1u64..100_000) {
        let alloc = BlockAllocator::linux24();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(alloc.alloc_cost(lo) <= alloc.alloc_cost(hi));
    }

    /// PCI-X transfer time is monotone in bytes and anti-monotone in MMRBC.
    #[test]
    fn pcix_monotonicity(bytes in 1u64..60_000) {
        let base = PcixSpec::dell_133();
        prop_assert!(base.packet_transfer_time(bytes) <= base.packet_transfer_time(bytes + 512));
        let mut prev = base.with_mmrbc(512).packet_transfer_time(bytes);
        for mmrbc in [1024u64, 2048, 4096] {
            let t = base.with_mmrbc(mmrbc).packet_transfer_time(bytes);
            prop_assert!(t <= prev, "bigger bursts never slower");
            prev = t;
        }
    }

    /// Copy time is monotone, stepwise in 64-byte quanta, and the SMP
    /// kernel never copies faster than the UP kernel.
    #[test]
    fn copy_time_properties(bytes in 1u64..100_000) {
        let smp = CpuSpec::pe2650();
        let up = smp.with_kernel(KernelMode::Uniprocessor);
        prop_assert!(up.copy_time(bytes) <= up.copy_time(bytes + 64));
        // Within one cache line, cost is flat.
        let base = (bytes - 1) / 64 * 64 + 1;
        prop_assert_eq!(up.copy_time(base), up.copy_time(base.div_ceil(64) * 64));
        prop_assert!(smp.copy_time(bytes) >= up.copy_time(bytes));
    }

    /// The analytic host receive ceiling is positive, below the wire rate,
    /// and never improves when the SMP kernel replaces UP.
    #[test]
    fn host_ceiling_sane(payload in 256u64..15_948) {
        let frame = payload + 58;
        let up = HostSpec::pe2650().with_mmrbc(4096).with_kernel(KernelMode::Uniprocessor);
        let smp = HostSpec::pe2650().with_mmrbc(4096);
        let c_up = up.rx_ceiling(frame, payload, true);
        let c_smp = smp.rx_ceiling(frame, payload, true);
        prop_assert!(c_up.bps() > 0);
        prop_assert!(c_up.gbps() < 10.0);
        prop_assert!(c_smp.bps() <= c_up.bps());
    }
}
