//! The memory subsystem model.
//!
//! Every byte a TCP transfer delivers crosses the memory bus several times:
//! the NIC DMAs the frame into memory, the kernel copies it to user space
//! (one read + one write), and on the transmit side the mirror image happens.
//! The paper's pktgen experiment isolates exactly this: a *single-copy* path
//! reached 5.5 Gb/s while the *triple-copy* TCP path reached ~75% of that —
//! "it is reasonable to expect that the TCP/IP stack would attenuate the
//! packet generator's performance by about 25%".
//!
//! The model charges a shared memory-bus `FifoServer` with the total bytes a
//! packet moves across the bus; the bus rate is derived from the chipset's
//! measured STREAM copy bandwidth. For the tuned jumbo-frame configurations
//! this server is the binding resource, which is how the laboratory
//! reproduces the paper's ~4.1 Gb/s host ceiling and its conclusion that the
//! bottleneck is the host's ability to move data.

use tengig_sim::{Bandwidth, Nanos};

/// Static description of a host's memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Theoretical peak memory bandwidth (the chipset datasheet number the
    /// paper quotes, e.g. 25.6 Gb/s for the GC-LE).
    pub theoretical: Bandwidth,
    /// Measured STREAM copy bandwidth (what `stream` reports; e.g. the paper
    /// quotes 12.8 Gb/s for the PE4600's GC-HE).
    pub stream_copy: Bandwidth,
    /// Effective bus throughput available to the packet path, as a multiple
    /// of STREAM copy bandwidth. STREAM's "copy" figure counts the bytes of
    /// one stream direction while the bus moves read+write concurrently with
    /// DMA traffic; the packet path additionally benefits from write
    /// combining and cache-line residency. Calibrated at 1.5 against the
    /// tuned 4.11 Gb/s jumbo-frame host ceiling.
    pub packet_path_factor: f64,
}

impl MemorySpec {
    /// ServerWorks GC-LE (Dell PE2650): 25.6 Gb/s theoretical; STREAM
    /// measures ≈ 8.5 Gb/s on these hosts (the paper reports the PE4600's
    /// 12.8 Gb/s as "nearly 50% better than that of the Dell PE2650s").
    pub fn gc_le() -> Self {
        MemorySpec {
            theoretical: Bandwidth::from_gbps_f64(25.6),
            stream_copy: Bandwidth::from_gbps_f64(8.5),
            packet_path_factor: 1.45,
        }
    }

    /// ServerWorks GC-HE (Dell PE4600): 51.2 Gb/s theoretical, 12.8 Gb/s
    /// STREAM (§3.5.2).
    pub fn gc_he() -> Self {
        MemorySpec {
            theoretical: Bandwidth::from_gbps_f64(51.2),
            stream_copy: Bandwidth::from_gbps_f64(12.8),
            packet_path_factor: 1.5,
        }
    }

    /// Intel E7505 (the loaner systems): theoretical 25.6 Gb/s; STREAM
    /// "within a few percent" of the PE2650 (§3.5.2) but a 533 MHz FSB moves
    /// packet data faster — the paper's closing hypothesis. Modeled as a
    /// higher packet-path factor.
    pub fn e7505() -> Self {
        MemorySpec {
            theoretical: Bandwidth::from_gbps_f64(25.6),
            stream_copy: Bandwidth::from_gbps_f64(8.8),
            packet_path_factor: 2.5,
        }
    }

    /// The quad Itanium-II system's chipset (zx1-class I/O and memory).
    pub fn itanium2() -> Self {
        MemorySpec {
            theoretical: Bandwidth::from_gbps_f64(51.2),
            stream_copy: Bandwidth::from_gbps_f64(16.0),
            packet_path_factor: 1.5,
        }
    }

    /// A commodity GbE workstation (far more bandwidth than a GbE needs).
    pub fn workstation() -> Self {
        MemorySpec {
            theoretical: Bandwidth::from_gbps_f64(17.0),
            stream_copy: Bandwidth::from_gbps_f64(6.0),
            packet_path_factor: 1.5,
        }
    }

    /// Effective bus bandwidth available to the packet path.
    pub fn packet_path_bandwidth(&self) -> Bandwidth {
        self.stream_copy.scale(self.packet_path_factor)
    }

    /// Bytes charged to the memory bus for receiving one frame of
    /// `frame_bytes` delivering `payload` to the application:
    /// one DMA write of the frame plus `copies` CPU copies, each of which
    /// reads and writes the payload (2 crossings per copy).
    pub fn rx_bus_bytes(&self, frame_bytes: u64, payload: u64, copies: u64) -> u64 {
        frame_bytes + 2 * copies * payload
    }

    /// Bytes charged for transmitting one frame (mirror of `rx_bus_bytes`:
    /// CPU copies from user space into the skb, then the NIC DMA-reads it).
    pub fn tx_bus_bytes(&self, frame_bytes: u64, payload: u64, copies: u64) -> u64 {
        frame_bytes + 2 * copies * payload
    }

    /// Bus occupancy time for moving `bus_bytes` across the memory bus.
    pub fn bus_time(&self, bus_bytes: u64) -> Nanos {
        self.packet_path_bandwidth().time_to_send(bus_bytes)
    }

    /// The host memory ceiling for a stream of received frames:
    /// the rate at which payload can cross the bus.
    pub fn rx_ceiling(&self, frame_bytes: u64, payload: u64, copies: u64) -> Bandwidth {
        let t = self.bus_time(self.rx_bus_bytes(frame_bytes, payload, copies));
        tengig_sim::rate_of(payload, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_numbers_match_paper() {
        assert!((MemorySpec::gc_he().stream_copy.gbps() - 12.8).abs() < 1e-9);
        // "nearly 50% better" than the PE2650.
        let ratio = MemorySpec::gc_he().stream_copy.gbps() / MemorySpec::gc_le().stream_copy.gbps();
        assert!((1.4..1.6).contains(&ratio), "ratio {ratio}");
        // E7505 STREAM within a few percent of the PE2650 (§3.5.2).
        let e = MemorySpec::e7505().stream_copy.gbps() / MemorySpec::gc_le().stream_copy.gbps();
        assert!((0.95..1.08).contains(&e), "e7505/pe2650 {e}");
    }

    #[test]
    fn tuned_jumbo_ceiling_near_paper_peak() {
        // PE2650, MTU 8160 (frame 8196, payload 8108, one rx copy):
        // the binding resource for the tuned configuration, ≈ 4.1-4.4 Gb/s.
        let m = MemorySpec::gc_le();
        let ceiling = m.rx_ceiling(8196, 8108, 1).gbps();
        assert!((3.9..4.7).contains(&ceiling), "ceiling {ceiling}");
    }

    #[test]
    fn single_copy_pktgen_is_not_memory_bound() {
        // pktgen DMA-reads each packet once, no CPU copy: the memory bus
        // could carry ~3x the observed 5.5 Gb/s — consistent with the
        // paper's finding that memory bandwidth is not pktgen's limit.
        let m = MemorySpec::gc_le();
        let t = m.bus_time(m.tx_bus_bytes(8198, 8160, 0));
        let rate = tengig_sim::rate_of(8160, t).gbps();
        assert!(rate > 10.0, "single-copy path rate {rate}");
    }

    #[test]
    fn bus_bytes_accounting() {
        let m = MemorySpec::gc_le();
        // frame + 2 crossings per copy.
        assert_eq!(m.rx_bus_bytes(9018, 8948, 1), 9018 + 17_896);
        assert_eq!(m.rx_bus_bytes(9018, 8948, 0), 9018);
        assert_eq!(m.tx_bus_bytes(1538, 1448, 2), 1538 + 4 * 1448);
    }

    #[test]
    fn e7505_moves_packets_faster_than_gc_le() {
        let pe = MemorySpec::gc_le().rx_ceiling(9036, 8948, 1).gbps();
        let e7 = MemorySpec::e7505().rx_ceiling(9036, 8948, 1).gbps();
        assert!(e7 > pe * 1.1, "e7505 {e7} vs pe2650 {pe}");
    }
}
