//! `tengig-hw` — models of the 2003-era host hardware the SC'03 case study
//! ran on.
//!
//! The paper's central finding is that the end-to-end bottleneck is "the host
//! software's ability to move data between every component in the system",
//! not the 10GbE link. This crate models the components data moves through:
//!
//! * [`cpu`] — CPUs, kernel mode (the SMP-interrupt pathology vs a
//!   uniprocessor kernel), and the per-segment / per-byte costs of the
//!   Linux 2.4 stack,
//! * [`pcix`] — the PCI-X bus with its maximum-memory-read-byte-count
//!   (MMRBC) burst model, the paper's first big tuning win,
//! * [`memory`] — the front-side-bus/memory subsystem (STREAM-calibrated),
//! * [`alloc`] — Linux's power-of-2 block allocation for socket buffers,
//!   which explains why an 8160-byte MTU beats 9000,
//! * [`disk`] — seek + sequential-rate storage spindles with FIFO
//!   read/write lanes, feeding the disk→NIC→WAN→NIC→disk pipeline stage,
//! * [`chipset`] — presets for every host the paper measures (Dell PE2650 /
//!   GC-LE, Dell PE4600 / GC-HE, the Intel E7505 loaners, the quad
//!   Itanium-II, and a GbE workstation for multi-flow senders).
//!
//! ## Where the default numbers come from
//!
//! The per-segment and per-byte cost constants are calibrated jointly against
//! the paper's measurements (see `tengig::calib` for the machine-checked
//! targets). The anchor points:
//!
//! * one-byte NetPipe latency 19 µs back-to-back with a 5 µs coalescing
//!   delay (fixes the sum of fixed path costs at ~14 µs),
//! * stock-TCP peaks 1.8 / 2.7 Gb/s (1500 / 9000 MTU) with CPU loads
//!   0.9 / 0.4 (fixes the 1500-byte CPU ceiling and the 512-byte-burst PCI-X
//!   ceiling),
//! * the tuned 4.11 Gb/s peak at MTU 8160 (fixes the memory-bus ceiling),
//! * the 5.5 Gb/s single-copy packet-generator limit (fixes the PCI-X
//!   per-packet descriptor overhead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod chipset;
pub mod cpu;
pub mod disk;
pub mod memory;
pub mod pcix;

pub use alloc::BlockAllocator;
pub use chipset::HostSpec;
pub use cpu::{CpuSpec, KernelMode, StackCosts};
pub use disk::{DiskModel, DiskSpec};
pub use memory::MemorySpec;
pub use pcix::PcixSpec;
