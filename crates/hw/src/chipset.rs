//! Whole-host presets: every machine the paper measures, as one spec.

use crate::alloc::BlockAllocator;
use crate::cpu::{CpuSpec, KernelMode};
use crate::memory::MemorySpec;
use crate::pcix::PcixSpec;
use tengig_sim::Bandwidth;

/// A complete host hardware description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// Display name ("PE2650", …).
    pub name: &'static str,
    /// CPU complex and kernel mode.
    pub cpu: CpuSpec,
    /// Memory subsystem.
    pub mem: MemorySpec,
    /// The PCI-X segment the NIC sits on.
    pub pci: PcixSpec,
    /// Kernel block allocator.
    pub alloc: BlockAllocator,
}

impl HostSpec {
    /// Dell PowerEdge 2650: dual 2.2 GHz Xeon, 400 MHz FSB, ServerWorks
    /// GC-LE, dedicated 133 MHz PCI-X — the paper's workhorse (§3.1).
    pub fn pe2650() -> Self {
        HostSpec {
            name: "PE2650",
            cpu: CpuSpec::pe2650(),
            mem: MemorySpec::gc_le(),
            pci: PcixSpec::dell_133(),
            alloc: BlockAllocator::linux24(),
        }
    }

    /// Dell PowerEdge 4600: dual 2.4 GHz Xeon, ServerWorks GC-HE,
    /// dedicated 100 MHz PCI-X (§3.1).
    pub fn pe4600() -> Self {
        HostSpec {
            name: "PE4600",
            cpu: CpuSpec::pe4600(),
            mem: MemorySpec::gc_he(),
            pci: PcixSpec::dell_100(),
            alloc: BlockAllocator::linux24(),
        }
    }

    /// The Intel-provided loaners: dual 2.66 GHz Xeon, 533 MHz FSB, Intel
    /// E7505 chipset, 100 MHz PCI-X (§3.1). Out of the box these carry a
    /// sane MMRBC already.
    pub fn e7505() -> Self {
        let mut pci = PcixSpec::dell_100().with_mmrbc(4096);
        // Newer memory-controller-hub bridge: lighter per-transaction cost.
        pci.packet_overhead = tengig_sim::Nanos::from_nanos(1500);
        HostSpec {
            name: "E7505",
            cpu: CpuSpec::e7505(),
            mem: MemorySpec::e7505(),
            pci,
            alloc: BlockAllocator::linux24(),
        }
    }

    /// The 1 GHz quad-processor Itanium-II system of §3.4, with a server
    /// chipset whose PCI-X bridge carries lower per-transaction overheads.
    pub fn itanium2_quad() -> Self {
        let mut pci = PcixSpec::dell_133().with_mmrbc(4096);
        pci.burst_overhead = tengig_sim::Nanos::from_nanos(400);
        pci.packet_overhead = tengig_sim::Nanos::from_nanos(800);
        HostSpec {
            name: "Itanium2x4",
            cpu: CpuSpec::itanium2_quad(),
            mem: MemorySpec::itanium2(),
            pci,
            alloc: BlockAllocator::linux24(),
        }
    }

    /// A commodity GbE workstation used as a multi-flow sender/sink. Its
    /// e1000-class NIC reaches near line rate at 1500 MTU, as the paper
    /// notes of the authors' GbE experience (§3.5.4).
    pub fn gbe_workstation() -> Self {
        HostSpec {
            name: "GbE-WS",
            cpu: CpuSpec::workstation(),
            mem: MemorySpec::workstation(),
            pci: PcixSpec::dell_133().with_mmrbc(4096),
            alloc: BlockAllocator::linux24(),
        }
    }

    /// The WAN end hosts of §4.1: dual 2.4 GHz Xeon, 2 GB memory, dedicated
    /// 133 MHz PCI-X.
    pub fn wan_endpoint() -> Self {
        HostSpec {
            name: "WAN-host",
            cpu: CpuSpec::pe4600(),
            mem: MemorySpec::gc_he(),
            pci: PcixSpec::dell_133().with_mmrbc(4096),
            alloc: BlockAllocator::linux24(),
        }
    }

    /// Replace the kernel mode.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.cpu = self.cpu.with_kernel(kernel);
        self
    }

    /// Replace the MMRBC setting.
    pub fn with_mmrbc(mut self, mmrbc: u64) -> Self {
        self.pci = self.pci.with_mmrbc(mmrbc);
        self
    }

    /// Back-of-envelope host receive ceiling for MSS-sized segments of
    /// `payload` bytes in `frame_bytes` frames: the minimum of the memory
    /// bus, PCI-X, and single-CPU stack ceilings. The simulator produces
    /// the real number; this is the analytic cross-check.
    pub fn rx_ceiling(&self, frame_bytes: u64, payload: u64, timestamps: bool) -> Bandwidth {
        let mem = self.mem.rx_ceiling(frame_bytes, payload, 1);
        let pci = self.pci.effective_bandwidth(frame_bytes);
        let per_seg = self.cpu.rx_segment_time(timestamps)
            + self.cpu.copy_time(payload)
            + self.alloc.alloc_cost(frame_bytes)
            + self.cpu.plain_time(self.cpu.costs.irq_entry) / 4 // coalesced batches
            + self.cpu.plain_time(self.cpu.costs.sched_wakeup) / 4;
        let cpu = tengig_sim::rate_of(payload, per_seg);
        Bandwidth::from_bps(mem.bps().min(pci.bps()).min(cpu.bps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tengig_ethernet::Mtu;

    fn ceiling(spec: &HostSpec, mtu: Mtu) -> f64 {
        spec.rx_ceiling(mtu.frame_bytes(), mtu.mss(true), true)
            .gbps()
    }

    #[test]
    fn pe2650_stock_is_pci_bound_for_jumbo() {
        let stock = HostSpec::pe2650();
        let c = ceiling(&stock, Mtu::JUMBO_9000);
        assert!((3.0..4.0).contains(&c), "stock jumbo ceiling {c}");
        // Raising MMRBC moves the bottleneck off the PCI-X bus: the bus
        // station itself gains >60%, the whole-host ceiling shifts to the
        // CPU/memory stations.
        let tuned = stock.with_mmrbc(4096);
        let c2 = ceiling(&tuned, Mtu::JUMBO_9000);
        assert!(c2 > c, "mmrbc gain {c} -> {c2}");
        let pci_gain =
            tuned.pci.effective_bandwidth(9018).gbps() / stock.pci.effective_bandwidth(9018).gbps();
        assert!(pci_gain > 1.6, "pci station gain {pci_gain}");
    }

    #[test]
    fn pe2650_standard_mtu_is_cpu_bound() {
        // At 1500 MTU the MMRBC barely matters (paper: "only a marginal
        // increase").
        let stock = ceiling(&HostSpec::pe2650(), Mtu::STANDARD);
        let tuned = ceiling(&HostSpec::pe2650().with_mmrbc(4096), Mtu::STANDARD);
        assert!(tuned / stock < 1.25, "1500 gain {}", tuned / stock);
        assert!((1.5..2.6).contains(&stock), "1500 ceiling {stock}");
    }

    #[test]
    fn tuned_8160_ceiling_near_paper_peak() {
        let tuned = HostSpec::pe2650()
            .with_mmrbc(4096)
            .with_kernel(KernelMode::Uniprocessor);
        let c = ceiling(&tuned, Mtu::TUNED_8160);
        assert!((3.8..4.8).contains(&c), "8160 ceiling {c}");
    }

    #[test]
    fn uniprocessor_beats_smp() {
        let smp = ceiling(&HostSpec::pe2650().with_mmrbc(4096), Mtu::STANDARD);
        let up = ceiling(
            &HostSpec::pe2650()
                .with_mmrbc(4096)
                .with_kernel(KernelMode::Uniprocessor),
            Mtu::STANDARD,
        );
        assert!(up > smp * 1.1, "up {up} vs smp {smp}");
    }

    #[test]
    fn e7505_beats_tuned_pe2650_out_of_box() {
        // §3.4: the loaners did 4.64 Gb/s essentially out of the box
        // (timestamps disabled), beating the tuned PE2650's 4.11.
        let e7 = HostSpec::e7505()
            .rx_ceiling(9018, Mtu::JUMBO_9000.mss(false), false)
            .gbps();
        let pe = HostSpec::pe2650()
            .with_mmrbc(4096)
            .with_kernel(KernelMode::Uniprocessor)
            .rx_ceiling(
                Mtu::TUNED_8160.frame_bytes(),
                Mtu::TUNED_8160.mss(true),
                true,
            )
            .gbps();
        assert!(e7 > pe, "e7505 {e7} vs pe2650 {pe}");
        assert!((4.1..5.3).contains(&e7), "e7505 ceiling {e7}");
    }

    #[test]
    fn itanium_ceiling_supports_aggregation_result() {
        // §3.4: 7.2 Gb/s aggregated into the quad Itanium-II. A single
        // flow is CPU-bound, but the aggregation spreads flows over four
        // CPUs; the shared stations (PCI-X, memory) must clear ~7 Gb/s.
        let it = HostSpec::itanium2_quad();
        assert!(it.pci.effective_bandwidth(9018).gbps() > 6.0);
        assert!(it.mem.rx_ceiling(9018, Mtu::JUMBO_9000.mss(true), 1).gbps() > 7.0);
        let single = it.rx_ceiling(9018, Mtu::JUMBO_9000.mss(true), true).gbps();
        assert!(single * it.cpu.cores as f64 > 7.2, "4 cpus x {single}");
    }

    #[test]
    fn wan_endpoint_comfortably_exceeds_oc48() {
        let c = ceiling(&HostSpec::wan_endpoint(), Mtu::JUMBO_9000);
        assert!(
            c > 2.5,
            "WAN host ceiling {c} must exceed the OC-48 bottleneck"
        );
    }
}
