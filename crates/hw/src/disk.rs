//! Storage model: seek plus sequential streaming rate, with per-spindle
//! FIFO read/write queues.
//!
//! The paper's capstone workload is an application-level disk-to-disk
//! WAN transfer (a terabyte in under an hour), and Kukol & Gray's
//! transcontinental follow-up showed the regime precisely: end-to-end
//! rate binds on whichever of *disk array*, *host*, or *wire* saturates
//! first, and multi-stream striping across spindles is how the disk side
//! keeps up with a 10 Gb/s path. This module models that storage side:
//!
//! * [`DiskSpec`] — positioning time and sustained sequential rate of
//!   one spindle (or one RAID volume presented as a spindle),
//! * [`DiskModel`] — a bank of spindles, each a pair of analytic
//!   [`FifoServer`] lanes (read and write), with streams mapped to
//!   spindles round-robin.
//!
//! Like every other host resource, a spindle needs no events of its own:
//! admitting a chunk at `now` analytically yields its completion time,
//! and the laboratory schedules whatever the completion triggers. A
//! positioning penalty is charged whenever a lane has gone idle — a
//! streaming disk that keeps its queue nonempty pays one seek and then
//! streams, while a stalled pipeline re-pays positioning on resume,
//! which is exactly the back-pressure coupling the Kukol–Gray regime
//! turns on.

use tengig_sim::{Admission, Bandwidth, FifoServer, Nanos};

/// Static parameters of one spindle (or striped volume).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Positioning (seek + rotational) time charged when a lane starts
    /// from idle.
    pub seek: Nanos,
    /// Sustained sequential transfer rate of the medium.
    pub rate: Bandwidth,
}

impl DiskSpec {
    /// A 2003-era 15k-rpm SCSI spindle: ~5 ms positioning, ~50 MB/s
    /// sustained sequential rate.
    pub fn scsi_2003() -> Self {
        DiskSpec {
            seek: Nanos::from_millis(5),
            rate: Bandwidth::from_gbps_f64(0.4),
        }
    }

    /// A small hardware-RAID volume of `stripes` SCSI spindles presented
    /// as one: same positioning time, aggregated sequential rate.
    pub fn raid_volume(stripes: u64) -> Self {
        let base = Self::scsi_2003();
        DiskSpec {
            seek: base.seek,
            rate: Bandwidth::from_gbps_f64(0.4 * stripes.max(1) as f64),
        }
    }

    /// Service time for a sequential chunk of `bytes`, excluding any
    /// positioning penalty.
    pub fn stream_time(&self, bytes: u64) -> Nanos {
        self.rate.time_to_send(bytes)
    }
}

/// One spindle's read and write service lanes.
#[derive(Debug, Clone)]
struct Spindle {
    read: FifoServer,
    write: FifoServer,
}

/// A host's disk subsystem: `spindles` independent [`DiskSpec`] media,
/// with streams mapped to spindles round-robin (`stream % spindles`).
///
/// Aggregate sequential bandwidth therefore scales with the number of
/// *distinct* spindles the active streams land on — the striping-ladder
/// experiment raises the stream count until either every spindle is busy
/// (disk-bound) or the path saturates first (wire-bound).
#[derive(Debug, Clone)]
pub struct DiskModel {
    spec: DiskSpec,
    spindles: Vec<Spindle>,
}

impl DiskModel {
    /// A bank of `spindles` identical media (at least one).
    pub fn new(spec: DiskSpec, spindles: usize) -> Self {
        assert!(spindles >= 1, "a disk model needs at least one spindle");
        DiskModel {
            spec,
            spindles: (0..spindles)
                .map(|_| Spindle {
                    read: FifoServer::new("disk-rd"),
                    write: FifoServer::new("disk-wr"),
                })
                .collect(),
        }
    }

    /// The per-spindle specification.
    pub fn spec(&self) -> DiskSpec {
        self.spec
    }

    /// Number of spindles in the bank.
    pub fn spindles(&self) -> usize {
        self.spindles.len()
    }

    /// The spindle lane a stream maps to.
    fn lane(&mut self, stream: usize) -> &mut Spindle {
        let n = self.spindles.len();
        &mut self.spindles[stream % n]
    }

    /// Admit a sequential read of `bytes` for `stream` at `now`. The
    /// positioning penalty applies only when the lane is idle (a kept-busy
    /// spindle streams; a drained one re-seeks).
    pub fn read(&mut self, stream: usize, now: Nanos, bytes: u64) -> Admission {
        let mut service = self.spec.stream_time(bytes);
        let seek = self.spec.seek;
        let lane = self.lane(stream);
        if lane.read.idle_at(now) {
            service += seek;
        }
        lane.read.admit(now, service)
    }

    /// Admit a sequential write of `bytes` for `stream` at `now`; same
    /// positioning rule as [`DiskModel::read`].
    pub fn write(&mut self, stream: usize, now: Nanos, bytes: u64) -> Admission {
        let mut service = self.spec.stream_time(bytes);
        let seek = self.spec.seek;
        let lane = self.lane(stream);
        if lane.write.idle_at(now) {
            service += seek;
        }
        lane.write.admit(now, service)
    }

    /// Total busy time delivered across all read lanes.
    pub fn read_busy_total(&self) -> Nanos {
        self.spindles.iter().map(|s| s.read.busy_total()).sum()
    }

    /// Total busy time delivered across all write lanes.
    pub fn write_busy_total(&self) -> Nanos {
        self.spindles.iter().map(|s| s.write.busy_total()).sum()
    }

    /// Peak per-lane utilization over `[0, now]` across both directions —
    /// 1.0 means some spindle never went idle: the pipeline is
    /// disk-bound.
    pub fn peak_utilization(&self, now: Nanos) -> f64 {
        self.spindles
            .iter()
            .flat_map(|s| [s.read.utilization(now), s.write.utilization(now)])
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_chunk_pays_seek_streaming_does_not() {
        let spec = DiskSpec::scsi_2003();
        let mut d = DiskModel::new(spec, 1);
        let chunk = 1 << 20;
        let a = d.read(0, Nanos::ZERO, chunk);
        assert_eq!(a.start, Nanos::ZERO);
        assert_eq!(a.done, spec.seek + spec.stream_time(chunk));
        // Queued behind the first: still busy, no second seek.
        let b = d.read(0, Nanos::ZERO, chunk);
        assert_eq!(b.start, a.done);
        assert_eq!(b.done, a.done + spec.stream_time(chunk));
        // After the lane drains, positioning is charged again.
        let idle_at = b.done + Nanos::from_secs(1);
        let c = d.read(0, idle_at, chunk);
        assert_eq!(c.done, idle_at + spec.seek + spec.stream_time(chunk));
    }

    #[test]
    fn streams_stripe_round_robin_across_spindles() {
        let mut d = DiskModel::new(DiskSpec::scsi_2003(), 2);
        let chunk = 8 << 20;
        let a = d.read(0, Nanos::ZERO, chunk);
        let b = d.read(1, Nanos::ZERO, chunk);
        // Distinct spindles: both start immediately.
        assert_eq!(a.start, Nanos::ZERO);
        assert_eq!(b.start, Nanos::ZERO);
        // Stream 2 shares spindle 0 and queues behind stream 0.
        let c = d.read(2, Nanos::ZERO, chunk);
        assert_eq!(c.start, a.done);
    }

    #[test]
    fn read_and_write_lanes_are_independent() {
        let mut d = DiskModel::new(DiskSpec::scsi_2003(), 1);
        let r = d.read(0, Nanos::ZERO, 1 << 20);
        let w = d.write(0, Nanos::ZERO, 1 << 20);
        assert_eq!(r.start, Nanos::ZERO);
        assert_eq!(
            w.start,
            Nanos::ZERO,
            "write lane does not queue behind reads"
        );
        assert!(d.read_busy_total() > Nanos::ZERO);
        assert!(d.write_busy_total() > Nanos::ZERO);
        assert!(d.peak_utilization(r.done.max(w.done)) > 0.9);
    }

    #[test]
    fn raid_volume_scales_sequential_rate() {
        let one = DiskSpec::scsi_2003();
        let four = DiskSpec::raid_volume(4);
        let chunk = 64 << 20;
        assert_eq!(
            four.stream_time(chunk).as_nanos() * 4,
            one.stream_time(chunk).as_nanos()
        );
    }
}
