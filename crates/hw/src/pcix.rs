//! The PCI-X bus model.
//!
//! A first-generation 10GbE adapter sits on a 64-bit PCI-X bus (8.5 Gb/s raw
//! at 133 MHz, 6.4 Gb/s at 100 MHz). Moving one packet across the bus costs:
//!
//! * a **per-packet transaction overhead** — descriptor fetch, doorbell,
//!   completion write-back (the reason the Linux packet generator tops out
//!   near 5.5 Gb/s even though the raw bus runs at 8.5 Gb/s),
//! * a **per-burst overhead** for each memory-read burst: bus arbitration,
//!   the address phase, and turnaround. The burst length is capped by the
//!   controller's maximum-memory-read-byte-count (MMRBC) register — the
//!   paper's very first optimization raises it from 512 to 4096 bytes,
//!   cutting an 18-burst jumbo transfer to 3 bursts (+33% peak throughput),
//! * the payload itself at the raw bus rate.

use tengig_sim::{Bandwidth, Nanos};

/// Legal MMRBC (maximum memory read byte count) values for the 82597EX.
pub const MMRBC_VALUES: [u64; 4] = [512, 1024, 2048, 4096];

/// Static description of a host's PCI-X segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcixSpec {
    /// Bus clock in MHz (66, 100, or 133 for PCI-X).
    pub clock_mhz: u64,
    /// Bus width in bits (64 for every host in the paper).
    pub width_bits: u64,
    /// Current maximum burst size in bytes (the MMRBC register).
    pub mmrbc: u64,
    /// Per-burst overhead: arbitration + address phase + turnaround.
    /// A fixed silicon latency of the host bridge, independent of the bus
    /// clock.
    pub burst_overhead: Nanos,
    /// Per-packet transaction overhead: descriptor fetch, doorbell PIO,
    /// completion write-back. Also a fixed bridge latency.
    pub packet_overhead: Nanos,
}

impl PcixSpec {
    /// The Dell PE2650's dedicated 133 MHz / 64-bit PCI-X segment, with the
    /// stock 512-byte MMRBC.
    pub fn dell_133() -> Self {
        PcixSpec {
            clock_mhz: 133,
            width_bits: 64,
            mmrbc: 512,
            burst_overhead: Nanos::from_nanos(550),
            packet_overhead: Nanos::from_nanos(2100),
        }
    }

    /// A 100 MHz / 64-bit PCI-X segment (Dell PE4600, Intel E7505 loaners).
    pub fn dell_100() -> Self {
        PcixSpec {
            clock_mhz: 100,
            ..Self::dell_133()
        }
    }

    /// Set the MMRBC register (must be one of [`MMRBC_VALUES`]).
    pub fn with_mmrbc(mut self, mmrbc: u64) -> Self {
        assert!(MMRBC_VALUES.contains(&mmrbc), "invalid MMRBC {mmrbc}");
        self.mmrbc = mmrbc;
        self
    }

    /// Raw bus bandwidth: `clock × width` (8.5 Gb/s at 133 MHz × 64 bit).
    pub fn raw_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bps(self.clock_mhz * 1_000_000 * self.width_bits)
    }

    /// Number of bursts needed to move `bytes`.
    pub fn bursts_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mmrbc).max(1)
    }

    /// Bus occupancy for moving one packet of `bytes` bytes, including all
    /// overheads. This is the service time charged to the PCI-X
    /// `FifoServer`.
    pub fn packet_transfer_time(&self, bytes: u64) -> Nanos {
        let payload = self.raw_bandwidth().time_to_send(bytes);
        let bursts = self.bursts_for(bytes);
        self.packet_overhead + self.burst_overhead * bursts + payload
    }

    /// Effective bandwidth for a stream of `bytes`-sized packets — useful
    /// for bottleneck analysis.
    pub fn effective_bandwidth(&self, bytes: u64) -> Bandwidth {
        tengig_sim::rate_of(bytes, self.packet_transfer_time(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bandwidth_matches_paper() {
        // "the peak bandwidth of a 133-MHz, 64-bit PCI-X bus in a PC is
        //  8.5 Gb/s" (§2).
        assert_eq!(PcixSpec::dell_133().raw_bandwidth().bps(), 8_512_000_000);
        assert_eq!(PcixSpec::dell_100().raw_bandwidth().bps(), 6_400_000_000);
    }

    #[test]
    fn burst_counts() {
        let stock = PcixSpec::dell_133();
        assert_eq!(stock.bursts_for(9018), 18);
        assert_eq!(stock.with_mmrbc(4096).bursts_for(9018), 3);
        assert_eq!(stock.bursts_for(1), 1);
        assert_eq!(stock.bursts_for(512), 1);
        assert_eq!(stock.bursts_for(513), 2);
    }

    #[test]
    fn mmrbc_4096_dramatically_helps_jumbo_little_helps_1500() {
        let stock = PcixSpec::dell_133();
        let tuned = stock.with_mmrbc(4096);
        let jumbo_gain =
            tuned.effective_bandwidth(9018).gbps() / stock.effective_bandwidth(9018).gbps();
        let std_gain =
            tuned.effective_bandwidth(1518).gbps() / stock.effective_bandwidth(1518).gbps();
        assert!(jumbo_gain > 1.5, "jumbo gain {jumbo_gain}");
        assert!(std_gain < 1.45, "1500 gain {std_gain}");
        assert!(jumbo_gain > std_gain);
    }

    #[test]
    fn stock_jumbo_ceiling_near_paper_value() {
        // With MMRBC 512 the PCI-X bus is the tightest hardware station for
        // jumbo frames: ~3.5 Gb/s of queue-free pipelined capacity, which
        // the full simulation (window dynamics, ACK traffic sharing the
        // bus) erodes to the paper's ~2.7 Gb/s peak.
        let eff = PcixSpec::dell_133().effective_bandwidth(9018).gbps();
        assert!((3.0..4.0).contains(&eff), "eff={eff}");
        // Tuned, the bus ceiling lifts well above the host's other limits.
        let eff4096 = PcixSpec::dell_133()
            .with_mmrbc(4096)
            .effective_bandwidth(9018)
            .gbps();
        assert!(eff4096 > 5.0, "eff4096={eff4096}");
    }

    #[test]
    fn slower_clock_means_slower_payload_but_same_overheads() {
        let fast = PcixSpec::dell_133();
        let slow = PcixSpec::dell_100();
        assert_eq!(slow.burst_overhead, fast.burst_overhead);
        assert!(slow.packet_transfer_time(9018) > fast.packet_transfer_time(9018));
        assert!(slow.raw_bandwidth() < fast.raw_bandwidth());
    }

    #[test]
    fn pktgen_ceiling_near_paper_value() {
        // §3.5.2: the single-copy packet generator peaks at ~5.5 Gb/s with
        // 8160-byte packets (~88,400 packets/s). The PCI-X per-packet
        // overhead is what binds it.
        let spec = PcixSpec::dell_133().with_mmrbc(4096);
        let t = spec.packet_transfer_time(8188);
        let pps = 1e9 / t.as_nanos() as f64;
        assert!((75_000.0..100_000.0).contains(&pps), "pps={pps}");
        let rate = tengig_sim::rate_of(8160, t).gbps();
        assert!((5.0..6.1).contains(&rate), "pktgen ceiling {rate}");
    }

    #[test]
    #[should_panic(expected = "invalid MMRBC")]
    fn invalid_mmrbc_rejected() {
        let _ = PcixSpec::dell_133().with_mmrbc(777);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let spec = PcixSpec::dell_133();
        let mut prev = Nanos::ZERO;
        for bytes in (64..20_000).step_by(64) {
            let t = spec.packet_transfer_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }
}
