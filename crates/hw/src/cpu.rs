//! CPU and kernel-path cost model.
//!
//! The Linux 2.4 stack charges the CPU fixed per-operation costs (syscall
//! entry, TCP/IP transmit and receive processing, hard-interrupt entry,
//! scheduler wakeups) plus per-byte costs for the copies between user space
//! and socket buffers. Two kernel-mode effects from the paper:
//!
//! * **SMP pathology** — "the P4 Xeon SMP architecture assigns each
//!   interrupt to a single CPU instead of processing them in a round-robin
//!   manner"; on top of the pinning, the SMP kernel pays locking and
//!   cache-bouncing overhead on every packet. Replacing it with a
//!   uniprocessor (UP) kernel bought the paper ~10% at 9000 MTU and
//!   20-25% at 1500 (§3.3).
//! * **TCP timestamps** — 12 option bytes plus per-segment processing;
//!   invisible when the CPU has headroom (PE2650), worth ~10% when it does
//!   not (the Intel E7505 loaners, §3.4).

use tengig_sim::Nanos;

/// Which kernel flavour the host boots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// SMP kernel: all NIC interrupts pinned to CPU 0; per-packet stack
    /// processing pays the SMP overhead factor.
    Smp,
    /// Uniprocessor kernel: one CPU, no SMP locking overhead.
    Uniprocessor,
}

/// Fixed and per-byte costs of the kernel network path, quoted at a
/// reference 2.2 GHz Xeon and scaled by clock for other CPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackCosts {
    /// Syscall + sockfd work per application `write()`/`read()`.
    pub syscall: Nanos,
    /// TCP/IP transmit processing per segment (excluding the copy).
    pub tx_segment: Nanos,
    /// TCP/IP receive processing per segment (softirq; excluding the copy).
    pub rx_segment: Nanos,
    /// Hard-interrupt entry/exit per interrupt (amortized over coalesced
    /// packet batches).
    pub irq_entry: Nanos,
    /// Scheduler wakeup of a blocked reader/writer.
    pub sched_wakeup: Nanos,
    /// CPU time per byte copied between user space and an skb.
    /// Distinct from memory-bus occupancy: this is the core executing the
    /// copy loop.
    pub copy_per_byte_ns: f64,
    /// Extra per-segment processing when RFC 1323 timestamps are on.
    pub timestamp: Nanos,
    /// Pure ACK processing (sender side) per ACK received.
    pub ack_process: Nanos,
    /// Multiplier on per-segment stack work under an SMP kernel.
    pub smp_factor: f64,
}

impl Default for StackCosts {
    fn default() -> Self {
        Self::linux24_reference()
    }
}

impl StackCosts {
    /// Calibrated Linux 2.4 costs at the 2.2 GHz reference clock.
    pub fn linux24_reference() -> Self {
        StackCosts {
            syscall: Nanos::from_nanos(500),
            tx_segment: Nanos::from_nanos(1300),
            rx_segment: Nanos::from_nanos(2400),
            irq_entry: Nanos::from_nanos(1000),
            sched_wakeup: Nanos::from_nanos(1000),
            copy_per_byte_ns: 1.15,
            timestamp: Nanos::from_nanos(400),
            ack_process: Nanos::from_nanos(700),
            smp_factor: 1.25,
        }
    }
}

/// A host's CPU complex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Number of processors.
    pub cores: usize,
    /// Clock in GHz.
    pub ghz: f64,
    /// Kernel flavour.
    pub kernel: KernelMode,
    /// Reference stack costs (at 2.2 GHz).
    pub costs: StackCosts,
}

impl CpuSpec {
    /// Dell PE2650: dual 2.2 GHz Xeon, stock SMP kernel.
    pub fn pe2650() -> Self {
        CpuSpec {
            cores: 2,
            ghz: 2.2,
            kernel: KernelMode::Smp,
            costs: StackCosts::default(),
        }
    }

    /// Dell PE4600: dual 2.4 GHz Xeon.
    pub fn pe4600() -> Self {
        CpuSpec {
            cores: 2,
            ghz: 2.4,
            kernel: KernelMode::Smp,
            costs: StackCosts::default(),
        }
    }

    /// Intel E7505 loaners: dual 2.66 GHz Xeon.
    pub fn e7505() -> Self {
        CpuSpec {
            cores: 2,
            ghz: 2.66,
            kernel: KernelMode::Smp,
            costs: StackCosts::default(),
        }
    }

    /// Quad 1.0 GHz Itanium-II. Wide cores: the clock alone under-states
    /// them, so the reference costs are reached at 1 GHz via a per-clock
    /// efficiency of 2.2 (EPIC vs P4 Xeon per-cycle work on kernel paths).
    pub fn itanium2_quad() -> Self {
        CpuSpec {
            cores: 4,
            ghz: 2.2,
            kernel: KernelMode::Smp,
            costs: StackCosts::default(),
        }
    }

    /// A 2.0 GHz GbE workstation.
    pub fn workstation() -> Self {
        CpuSpec {
            cores: 1,
            ghz: 2.0,
            kernel: KernelMode::Uniprocessor,
            costs: StackCosts::default(),
        }
    }

    /// Switch kernel flavour.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Clock scale factor relative to the 2.2 GHz reference.
    fn clock_scale(&self) -> f64 {
        2.2 / self.ghz
    }

    /// The SMP multiplier in effect (1.0 under a UP kernel).
    pub fn smp_multiplier(&self) -> f64 {
        match self.kernel {
            KernelMode::Smp => self.costs.smp_factor,
            KernelMode::Uniprocessor => 1.0,
        }
    }

    /// Number of CPUs the scheduler can use: a UP kernel sees one CPU
    /// regardless of the socket count.
    pub fn usable_cores(&self) -> usize {
        match self.kernel {
            KernelMode::Smp => self.cores,
            KernelMode::Uniprocessor => 1,
        }
    }

    /// Scale a reference fixed cost to this CPU (clock + SMP factor).
    pub fn stack_time(&self, reference: Nanos) -> Nanos {
        reference.scale(self.clock_scale() * self.smp_multiplier())
    }

    /// Scale a reference fixed cost by clock only (work outside the locked
    /// stack paths: copies, syscall entry).
    pub fn plain_time(&self, reference: Nanos) -> Nanos {
        reference.scale(self.clock_scale())
    }

    /// CPU time to copy `bytes` between user space and an skb, in 64-byte
    /// cache-line quanta (the source of the stepwise latency growth in
    /// Fig. 6). The SMP factor applies here too: on the SMP kernel the
    /// copy chases cache lines the interrupt CPU dirtied.
    pub fn copy_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let lines = bytes.div_ceil(64);
        let ns = lines as f64
            * 64.0
            * self.costs.copy_per_byte_ns
            * self.clock_scale()
            * self.smp_multiplier();
        Nanos::from_nanos(ns.round() as u64)
    }

    /// Per-segment receive-side stack cost (softirq processing plus the
    /// timestamp option if enabled), excluding interrupt entry and copies.
    pub fn rx_segment_time(&self, timestamps: bool) -> Nanos {
        let base = self.stack_time(self.costs.rx_segment);
        if timestamps {
            base + self.stack_time(self.costs.timestamp)
        } else {
            base
        }
    }

    /// Per-segment transmit-side stack cost.
    pub fn tx_segment_time(&self, timestamps: bool) -> Nanos {
        let base = self.stack_time(self.costs.tx_segment);
        if timestamps {
            base + self.stack_time(self.costs.timestamp)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smp_multiplier_only_under_smp() {
        let smp = CpuSpec::pe2650();
        let up = smp.with_kernel(KernelMode::Uniprocessor);
        assert!((smp.smp_multiplier() - 1.25).abs() < 1e-12);
        assert!((up.smp_multiplier() - 1.0).abs() < 1e-12);
        assert!(smp.stack_time(Nanos::from_nanos(1000)) > up.stack_time(Nanos::from_nanos(1000)));
        assert_eq!(up.usable_cores(), 1);
        assert_eq!(smp.usable_cores(), 2);
    }

    #[test]
    fn faster_clock_means_lower_cost() {
        let pe = CpuSpec::pe2650();
        let e7 = CpuSpec::e7505();
        assert!(e7.stack_time(Nanos::from_nanos(3500)) < pe.stack_time(Nanos::from_nanos(3500)));
        // Reference CPU at reference clock passes costs through (modulo SMP).
        let up = pe.with_kernel(KernelMode::Uniprocessor);
        assert_eq!(
            up.stack_time(Nanos::from_nanos(3500)),
            Nanos::from_nanos(3500)
        );
    }

    #[test]
    fn copy_time_is_stepwise_in_cache_lines() {
        let up = CpuSpec::pe2650().with_kernel(KernelMode::Uniprocessor);
        // Within one cache line, cost is flat.
        assert_eq!(up.copy_time(1), up.copy_time(64));
        // Crossing the line boundary steps up.
        assert!(up.copy_time(65) > up.copy_time(64));
        assert_eq!(up.copy_time(65), up.copy_time(128));
        assert_eq!(up.copy_time(0), Nanos::ZERO);
        // 8948 bytes at 1.15 ns/B ≈ 10.3 µs (DMA-cold destination lines).
        let t = up.copy_time(8948).as_micros_f64();
        assert!((9.8..10.8).contains(&t), "{t}");
    }

    #[test]
    fn timestamps_add_per_segment_cost() {
        let up = CpuSpec::pe2650().with_kernel(KernelMode::Uniprocessor);
        assert!(up.rx_segment_time(true) > up.rx_segment_time(false));
        assert_eq!(
            up.rx_segment_time(true) - up.rx_segment_time(false),
            Nanos::from_nanos(400)
        );
    }

    #[test]
    fn presets_sane() {
        assert_eq!(CpuSpec::pe2650().cores, 2);
        assert_eq!(CpuSpec::itanium2_quad().cores, 4);
        assert!(CpuSpec::e7505().ghz > CpuSpec::pe4600().ghz);
    }
}
