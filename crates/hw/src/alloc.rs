//! The Linux power-of-2 block allocator model.
//!
//! §3.3 ("Tuning the MTU Size"): "Linux allocates memory from pools of
//! power-of-2 sized blocks. An 8160-byte MTU allows an entire packet —
//! payload + TCP/IP headers + Ethernet headers — to fit in a single
//! 8192-byte block whereas a 9000-byte MTU requires the kernel to allocate a
//! 16384-byte block, thus wasting roughly 7000 bytes" and "using larger
//! blocks places far greater stress on the kernel's memory-allocation
//! subsystem because it is generally harder to find the contiguous pages
//! required for the larger blocks."
//!
//! The model captures all three consequences:
//!
//! * **block size** — the power-of-2 block an skb of a given size lands in,
//! * **truesize** — block + skb bookkeeping, the unit Linux charges against
//!   the socket receive buffer (the hidden reason "oversizing" buffers
//!   helps: a 9000-MTU frame charges 16640 bytes of buffer for 8948 bytes
//!   of payload),
//! * **allocation cost** — CPU time per allocation, growing with block
//!   order to model the contiguous-page pressure.

use tengig_sim::Nanos;

/// Per-skb bookkeeping overhead charged in addition to the data block
/// (`struct sk_buff` plus alignment), as Linux accounts it in `skb->truesize`.
pub const SKB_OVERHEAD: u64 = 256;

/// Model of the kernel's power-of-2 ("buddy"-backed) block allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockAllocator {
    /// Allocation cost for a block of order 0 (≤ 4096 bytes).
    pub base_cost: Nanos,
    /// Additional cost per order above 0, compounding the difficulty of
    /// finding contiguous pages. Order 1 = 8 KiB, order 2 = 16 KiB, …
    pub per_order_cost: Nanos,
    /// Extra multiplier applied from this order upward, modeling the sharp
    /// contiguity pressure the paper observed for 16 KiB blocks.
    pub pressure_order: u32,
    /// The pressure multiplier.
    pub pressure_factor: f64,
}

impl Default for BlockAllocator {
    fn default() -> Self {
        Self::linux24()
    }
}

impl BlockAllocator {
    /// Calibrated Linux 2.4 defaults.
    pub fn linux24() -> Self {
        BlockAllocator {
            base_cost: Nanos::from_nanos(100),
            per_order_cost: Nanos::from_nanos(200),
            pressure_order: 2,
            pressure_factor: 5.0,
        }
    }

    /// The power-of-2 block size that holds `bytes` (minimum 256).
    pub fn block_size(bytes: u64) -> u64 {
        bytes.max(256).next_power_of_two()
    }

    /// Wasted bytes when `bytes` lands in its block.
    pub fn waste(bytes: u64) -> u64 {
        Self::block_size(bytes) - bytes
    }

    /// The buddy order of the block holding `bytes`: order 0 is one 4 KiB
    /// page (blocks ≤ 4096), order n is `4096 << n`.
    pub fn order(bytes: u64) -> u32 {
        let block = Self::block_size(bytes);
        if block <= 4096 {
            0
        } else {
            (block / 4096).trailing_zeros()
        }
    }

    /// `skb->truesize`: what one frame of `frame_bytes` charges against a
    /// socket buffer.
    pub fn truesize(frame_bytes: u64) -> u64 {
        Self::block_size(frame_bytes) + SKB_OVERHEAD
    }

    /// CPU cost of allocating a block for `bytes`.
    pub fn alloc_cost(&self, bytes: u64) -> Nanos {
        let order = Self::order(bytes);
        let linear = self.base_cost + self.per_order_cost * order as u64;
        if order >= self.pressure_order {
            linear.scale(self.pressure_factor)
        } else {
            linear
        }
    }

    /// Payload-per-buffer efficiency: how much of the truesize charge is
    /// useful payload. This single number explains the paper's MTU ranking:
    /// 8160 (0.95) > 16000 (0.95) > 1500 (0.63) > 9000 (0.54).
    pub fn buffer_efficiency(frame_bytes: u64, payload: u64) -> f64 {
        payload as f64 / Self::truesize(frame_bytes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tengig_ethernet::Mtu;

    #[test]
    fn paper_block_sizes() {
        // 8160 MTU: whole frame (8178 bytes with Ethernet header + FCS)
        // fits one 8 KiB block... frame = 8160 + 18 = 8178 ≤ 8192. ✓
        assert_eq!(
            BlockAllocator::block_size(Mtu::TUNED_8160.frame_bytes()),
            8192
        );
        // 9000 MTU needs a 16 KiB block and wastes ~7 KB.
        assert_eq!(
            BlockAllocator::block_size(Mtu::JUMBO_9000.frame_bytes()),
            16384
        );
        assert!(BlockAllocator::waste(Mtu::JUMBO_9000.frame_bytes()) > 7000);
        // 16000 MTU also lands in 16 KiB but wastes little.
        assert_eq!(
            BlockAllocator::block_size(Mtu::MAX_INTEL_16000.frame_bytes()),
            16384
        );
        assert!(BlockAllocator::waste(Mtu::MAX_INTEL_16000.frame_bytes()) < 400);
    }

    #[test]
    fn orders() {
        assert_eq!(BlockAllocator::order(1518), 0);
        assert_eq!(BlockAllocator::order(4096), 0);
        assert_eq!(BlockAllocator::order(8178), 1);
        assert_eq!(BlockAllocator::order(9018), 2);
        assert_eq!(BlockAllocator::order(16018), 2);
        assert_eq!(BlockAllocator::order(20000), 3);
    }

    #[test]
    fn alloc_cost_grows_with_order_and_pressure() {
        let a = BlockAllocator::linux24();
        let c1500 = a.alloc_cost(1518);
        let c8160 = a.alloc_cost(8178);
        let c9000 = a.alloc_cost(9036);
        assert!(c1500 < c8160, "{c1500} < {c8160}");
        assert!(c8160 < c9000);
        // Pressure kicks in at order 2: the 16 KiB block costs much more
        // than linear extrapolation.
        assert!(c9000 > c8160.scale(2.0), "{c9000} vs {c8160}");
    }

    #[test]
    fn buffer_efficiency_ranking_matches_paper() {
        let eff = |mtu: Mtu| BlockAllocator::buffer_efficiency(mtu.frame_bytes(), mtu.mss(true));
        let e1500 = eff(Mtu::STANDARD);
        let e9000 = eff(Mtu::JUMBO_9000);
        let e8160 = eff(Mtu::TUNED_8160);
        let e16000 = eff(Mtu::MAX_INTEL_16000);
        assert!(e8160 > 0.9, "{e8160}");
        assert!(e16000 > 0.9, "{e16000}");
        assert!(e9000 < 0.56, "{e9000}");
        assert!(e1500 > e9000 && e1500 < e8160, "{e1500}");
    }

    #[test]
    fn truesize_includes_skb_overhead() {
        assert_eq!(BlockAllocator::truesize(1518), 2048 + 256);
        assert_eq!(BlockAllocator::truesize(9036), 16384 + 256);
    }

    #[test]
    fn tiny_allocations_clamp_to_minimum_block() {
        assert_eq!(BlockAllocator::block_size(1), 256);
        assert_eq!(BlockAllocator::block_size(0), 256);
        assert_eq!(BlockAllocator::order(1), 0);
    }
}
