//! A vendored, dependency-free shim of the `proptest` property-testing
//! harness.
//!
//! The workspace must build with no network access, so instead of the real
//! crate this in-tree stand-in provides exactly the surface the repo's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`), accepting parameters written either as
//!   `name in strategy` or `name: Type`;
//! * integer-range and tuple strategies, [`any`]/[`Arbitrary`], and
//!   [`collection::vec`] with either a range or an exact-length size;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Sampling is purely random (xoshiro-style, seeded per test from the test
//! name) — there is no shrinking. On failure the panic message includes the
//! case number so a failing run is reproducible by rerunning the test: the
//! seed is a pure function of the test name, so every run explores the same
//! case sequence.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// SplitMix64 finalizer used for seed derivation.
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The random source handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic per-test stream: seeded from the test's name so every
    /// run of the suite explores the same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0x5115_7a4c_e32f_71d3;
        for b in name.bytes() {
            h = splitmix64(h ^ b as u64);
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix64(h);
        }
        TestRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` via debiased multiply-shift.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A source of random values of a given type.
///
/// Unlike real proptest there is no value tree and no shrinking; a strategy
/// is just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 inclusive range.
                    rng.next_u64() as $t
                } else {
                    self.start().wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for a type: `any::<bool>()`, `any::<u32>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`]: an exact length or
    /// a (half-open / inclusive) range of lengths.
    pub trait IntoSizeRange {
        /// Half-open `[lo, hi)` bounds on the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite quick while
        // still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The usual glob import: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; accepts the same forms as [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; accepts the same forms as
/// [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests. Each `fn` becomes a `#[test]` that draws its
/// parameters from the given strategies and runs the body for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __run = || {
                    $crate::__prop_bind!(__rng; $($params)*);
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1, __config.cases, stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let y = (0u8..4).sample(&mut rng);
            assert!(y < 4);
            let z = (1usize..=6).sample(&mut rng);
            assert!((1..=6).contains(&z));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::for_test("vec_sizes_respect_bounds");
        for _ in 0..200 {
            let v = collection::vec(0u64..100, 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            let exact = collection::vec(any::<bool>(), 64).sample(&mut rng);
            assert_eq!(exact.len(), 64);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuples_compose");
        let (a, b) = (0u64..10, 100u64..200).sample(&mut rng);
        assert!(a < 10);
        assert!((100..200).contains(&b));
    }

    #[test]
    fn per_test_streams_are_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        /// The macro itself, in both parameter forms with a trailing comma.
        #[test]
        fn macro_smoke(a in 1u64..100, flag: bool, pair in (0u8..4, 1usize..6),) {
            prop_assert!((1..100).contains(&a));
            prop_assert_eq!(flag, flag);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_is_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
