//! The machine-checked paper-vs-laboratory battery: every calibration
//! target of `tengig::calib` must hold within its documented tolerance.
//!
//! This is the "shape contract" of the reproduction: who wins, by roughly
//! what factor, and where the crossovers fall. It is the slowest test in
//! the repository (it runs the full experiment set); run with `--release`
//! when iterating.

use tengig::calib::run_calibration;
use tengig::report::comparison_table;

#[test]
fn all_calibration_targets_within_tolerance() {
    let targets = run_calibration();
    assert!(targets.len() >= 15, "battery must stay comprehensive");
    let failures: Vec<String> = targets
        .iter()
        .filter(|t| !t.pass())
        .map(|t| {
            format!(
                "{}: paper {:.3}, measured {:.3} ({:+.1}%, tol ±{:.0}%)",
                t.cmp.name,
                t.cmp.paper,
                t.cmp.measured,
                t.cmp.rel_error() * 100.0,
                t.tol * 100.0
            )
        })
        .collect();
    if !failures.is_empty() {
        let rows: Vec<_> = targets.iter().map(|t| t.cmp.clone()).collect();
        panic!(
            "{} calibration target(s) out of band:\n{}\n\nfull table:\n{}",
            failures.len(),
            failures.join("\n"),
            comparison_table("paper vs laboratory", &rows)
        );
    }
}

#[test]
fn table1_recovery_times_match_to_the_minute() {
    use tengig::analytic::table1;
    let rows = table1();
    let minutes = |i: usize| rows[i].time.as_secs_f64() / 60.0;
    // Paper Table 1 (reconstructed): 1 hr 42 min / 17 min / 3 hr 51 min /
    // 38 min for the four WAN rows.
    assert!(
        (101.0..105.0).contains(&minutes(1)),
        "Geneva-Chicago 1460: {} min",
        minutes(1)
    );
    assert!(
        (16.0..18.0).contains(&minutes(2)),
        "Geneva-Chicago 8960: {} min",
        minutes(2)
    );
    assert!(
        (228.0..234.0).contains(&minutes(3)),
        "Geneva-Sunnyvale 1460: {} min",
        minutes(3)
    );
    assert!(
        (36.5..38.5).contains(&minutes(4)),
        "Geneva-Sunnyvale 8960: {} min",
        minutes(4)
    );
}

#[test]
fn interconnect_comparison_claims_hold_with_simulated_numbers() {
    use tengig::config::LadderRung;
    use tengig::experiments::throughput::nttcp_point;
    use tengig_ethernet::Mtu;
    use tengig_nic::Interconnect;
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let ours = nttcp_point(cfg, 8108, 2_000, 7).throughput.gbps();
    // §3.5.4: >300% vs GbE, >120% vs Myrinet/IP, >80% vs QsNet/IP.
    let adv = |other: f64| (ours / other - 1.0) * 100.0;
    assert!(adv(Interconnect::gbe_tcp().unidirectional.gbps()) > 290.0);
    assert!(adv(Interconnect::myrinet_ip().unidirectional.gbps()) > 100.0);
    assert!(adv(Interconnect::qsnet_ip().unidirectional.gbps()) > 70.0);
}
