//! Observability-layer integration tests: the flight recorder dumps on a
//! sanitizer violation, metrics timelines reproduce the paper's
//! cwnd-vs-time shape, enabling obs never changes a primary result, and
//! the tracer's sampling is a pure function of the scenario seed.

use std::panic::AssertUnwindSafe;

use tengig::experiments::throughput::{nttcp_point, nttcp_point_obs};
use tengig::experiments::wan::record_timeline;
use tengig::experiments::{b2b_lab, run_to_completion};
use tengig::lab::{self, App};
use tengig::LadderRung;
use tengig_ethernet::Mtu;
use tengig_net::WanSpec;
use tengig_sim::{MetricKind, Nanos, ObsConfig, Sanitizer, Scope, ViolationKind};
use tengig_tools::{NttcpReceiver, NttcpSender};

const SEED: u64 = 42;

fn quick_obs() -> ObsConfig {
    ObsConfig {
        sample_interval: Nanos::from_micros(50),
        ring_capacity: 128,
        sample_every: 4,
    }
}

fn nttcp_app(payload: u64, count: u64) -> App {
    App::Nttcp {
        tx: NttcpSender::new(payload, count),
        rx: NttcpReceiver::new(payload * count),
    }
}

#[test]
fn sanitizer_violation_dumps_the_flight_recorder() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let (mut lab, mut eng) = b2b_lab(cfg, nttcp_app(1448, 200), SEED);
    // Force the recorder and sanitizer on regardless of build profile.
    eng.install_sanitizer(Sanitizer::new(SEED));
    lab.arm_flight_recorder(lab::FLIGHT_RING);
    run_to_completion(&mut lab, &mut eng);

    // Inject a violation as an invariant check would.
    let now = eng.now();
    eng.sanitizer_mut().expect("sanitizer installed").record(
        ViolationKind::TcpInvariant,
        now,
        "forced by tests/obs.rs".to_string(),
    );

    let panic = std::panic::catch_unwind(AssertUnwindSafe(|| {
        lab::check_sanitizer(&lab, &mut eng, false);
    }))
    .expect_err("a recorded violation must panic the check");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(msg.contains("forced by tests/obs.rs"), "{msg}");
    assert!(msg.contains("flight recorder"), "{msg}");
    // The dump carries the offending run's recent trace events.
    assert!(
        msg.contains("tx-stack") || msg.contains("rx-stack"),
        "{msg}"
    );
}

#[test]
fn flight_dump_holds_the_last_events_of_a_run() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let (mut lab, mut eng) = b2b_lab(cfg, nttcp_app(1448, 300), SEED);
    // In debug builds the default sanitizer has already armed the recorder
    // at FLIGHT_RING; in release this arms it. Either way the per-host ring
    // stays bounded at FLIGHT_RING.
    lab.arm_flight_recorder(lab::FLIGHT_RING);
    run_to_completion(&mut lab, &mut eng);
    let dump = lab::flight_dump(&lab);
    assert!(!dump.is_empty());
    assert!(dump.len() <= 2 * lab::FLIGHT_RING, "len={}", dump.len());
    let text = dump.text();
    assert!(text.contains("flight recorder"), "{text}");
    assert!(text.contains("host 0"), "{text}");
}

#[test]
fn enabling_obs_never_changes_the_primary_result() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let plain = nttcp_point(cfg, 1448, 2_000, SEED);
    let (observed, tl) = nttcp_point_obs(cfg, 1448, 2_000, SEED, &quick_obs());
    assert_eq!(plain, observed, "obs must be a pure observer");
    assert!(!tl.is_empty(), "timelines recorded");
}

#[test]
fn wan_cwnd_timeline_reproduces_slow_start_growth() {
    let (result, tl) = record_timeline(
        &WanSpec::record_run(),
        None,
        Nanos::from_millis(500),
        Nanos::from_millis(500),
        SEED,
        &ObsConfig::default(),
    );
    assert!(result.gbps > 0.0);
    let cwnd = tl
        .get(Scope::Flow { flow: 0, ep: 0 }, MetricKind::Cwnd)
        .expect("sender cwnd series");
    assert!(cwnd.len() > 1, "cwnd must evolve, steps={}", cwnd.len());
    let first = cwnd.points()[0].1;
    let max = cwnd.max().expect("non-empty");
    assert!(max > first, "cwnd must grow: first={first} max={max}");
    // The JSONL side-channel round-trips the exact same data.
    let parsed = tengig_sim::Timelines::from_jsonl(&tl.to_jsonl()).expect("round trip");
    assert_eq!(parsed.to_jsonl(), tl.to_jsonl());
}

#[test]
fn tracer_sampling_is_a_pure_function_of_the_seed() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let dump_for = |seed: u64| {
        let (mut lab, mut eng) = b2b_lab(cfg, nttcp_app(1448, 500), seed);
        lab.enable_obs(&quick_obs(), seed);
        run_to_completion(&mut lab, &mut eng);
        lab::flight_dump(&lab).text()
    };
    // Same seed → byte-identical sampled rings; the sampling RNG is forked
    // from the scenario seed, never a fixed constant.
    assert_eq!(dump_for(SEED), dump_for(SEED));
    assert_ne!(
        dump_for(SEED),
        dump_for(SEED + 1),
        "a new seed must resample the detail ring"
    );
}
