//! §3.5.2 multi-flow aggregation and §3.4 anecdotal hosts.

use tengig::config::LadderRung;
use tengig::experiments::anecdotal::{e7505_out_of_box, itanium_aggregation};
use tengig::experiments::multiflow::{aggregate, Direction};
use tengig::experiments::throughput::{nttcp_point, pktgen_run};
use tengig_ethernet::Mtu;
use tengig_sim::Nanos;

fn tengbe() -> tengig::config::HostConfig {
    LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000)
}

#[test]
fn aggregation_approaches_single_flow_ceiling() {
    // Aggregating GbE senders into one PE2650 receiver tops out near the
    // same host ceiling a single tuned 10GbE flow hits.
    let w = Nanos::from_millis(30);
    let agg = aggregate(tengbe(), 5, Direction::IntoTenGbe, w, w);
    let single = nttcp_point(tengbe(), 8948, 1_500, 3).throughput.gbps();
    assert!(agg.aggregate_gbps > 2.5, "aggregate {}", agg.aggregate_gbps);
    assert!(
        agg.aggregate_gbps < single * 1.35,
        "aggregate {} cannot much exceed the host ceiling {}",
        agg.aggregate_gbps,
        single
    );
}

#[test]
fn transmit_and_receive_paths_statistically_equal() {
    // §3.5.2: the unexpected symmetry between tx and rx multiflow paths.
    let w = Nanos::from_millis(30);
    let rx = aggregate(tengbe(), 3, Direction::IntoTenGbe, w, w);
    let tx = aggregate(tengbe(), 3, Direction::OutOfTenGbe, w, w);
    let ratio = rx.aggregate_gbps / tx.aggregate_gbps;
    assert!((0.7..1.4).contains(&ratio), "rx/tx ratio {ratio}");
}

#[test]
fn receive_benefits_from_interrupt_coalescing_bursts() {
    // §3.5.2: "Packets from multiple hosts are more likely to be received
    // in frequent bursts … allowing the receive path to benefit from
    // interrupt coalescing." More senders → bigger mean batches would show
    // on the receiver; here we check the aggregate CPU cost per byte does
    // not balloon with sender count.
    let w = Nanos::from_millis(30);
    let two = aggregate(tengbe(), 2, Direction::IntoTenGbe, w, w);
    let five = aggregate(tengbe(), 5, Direction::IntoTenGbe, w, w);
    let cost_two = two.tengbe_cpu_load / two.aggregate_gbps;
    let cost_five = five.tengbe_cpu_load / five.aggregate_gbps;
    assert!(
        cost_five < cost_two * 1.3,
        "per-Gb/s CPU cost should not balloon: {cost_two:.3} -> {cost_five:.3}"
    );
}

#[test]
fn pktgen_vs_tcp_ratio_matches_paper() {
    // §3.5.2: observed TCP ≈ 75% of the single-copy packet generator.
    let cfg = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let pg = pktgen_run(cfg, 8132, 4_000);
    let tcp = nttcp_point(cfg, 8108, 1_500, 3).throughput.gbps();
    assert!((4.9..6.3).contains(&pg.gbps), "pktgen {}", pg.gbps);
    let ratio = tcp / pg.gbps;
    assert!(
        (0.6..0.85).contains(&ratio),
        "tcp/pktgen ratio {ratio} (paper ~0.75)"
    );
}

#[test]
fn e7505_out_of_box_beats_tuned_pe2650() {
    // §3.4: 4.64 Gb/s "essentially out of the box".
    let e7 = e7505_out_of_box(1_500).throughput.gbps();
    let pe = nttcp_point(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        8108,
        1_500,
        3,
    )
    .throughput
    .gbps();
    assert!(e7 > pe, "E7505 {e7} must beat tuned PE2650 {pe}");
    assert!((4.0..5.4).contains(&e7), "E7505 {e7} (paper 4.64)");
}

#[test]
fn itanium_aggregation_exceeds_xeon_hosts() {
    // §3.4: 7.2 Gb/s into the quad Itanium-II.
    let w = Nanos::from_millis(25);
    let it = itanium_aggregation(8, w, w);
    let pe = aggregate(tengbe(), 8, Direction::IntoTenGbe, w, w);
    assert!(
        it.aggregate_gbps > pe.aggregate_gbps,
        "Itanium {} must beat the PE2650 {}",
        it.aggregate_gbps,
        pe.aggregate_gbps
    );
    assert!(
        it.aggregate_gbps > 4.8,
        "Itanium aggregate {}",
        it.aggregate_gbps
    );
}
