//! The §3.3 optimization ladder: each cumulative tuning step must help (or
//! at least not hurt) exactly where the paper says it does.

use tengig::config::LadderRung;
use tengig::experiments::throughput::nttcp_point;
use tengig_ethernet::Mtu;

const COUNT: u64 = 1_500;

fn peak(rung: LadderRung, mtu: Mtu) -> f64 {
    let cfg = rung.pe2650_config(mtu);
    nttcp_point(cfg, cfg.sysctls.mss(), COUNT, 3)
        .throughput
        .gbps()
}

#[test]
fn ladder_is_monotone_at_9000() {
    let stock = peak(LadderRung::Stock, Mtu::JUMBO_9000);
    let pci = peak(LadderRung::PciBurst, Mtu::JUMBO_9000);
    let up = peak(LadderRung::Uniprocessor, Mtu::JUMBO_9000);
    let win = peak(LadderRung::OversizedWindows, Mtu::JUMBO_9000);
    assert!(pci >= stock, "MMRBC 4096 must not hurt: {stock} -> {pci}");
    assert!(up >= pci * 0.97, "UP kernel must not hurt: {pci} -> {up}");
    assert!(win > up, "256 KB windows must help: {up} -> {win}");
    assert!(win > stock * 1.3, "whole ladder gain: {stock} -> {win}");
}

#[test]
fn mmrbc_gain_is_dramatic_at_9000_marginal_at_1500() {
    // §3.3: "Although this optimization only produces a marginal increase
    // in throughput for 1500-byte MTUs, it dramatically improves
    // performance with 9000-byte MTUs."
    let jumbo_gain =
        peak(LadderRung::PciBurst, Mtu::JUMBO_9000) / peak(LadderRung::Stock, Mtu::JUMBO_9000);
    let std_gain =
        peak(LadderRung::PciBurst, Mtu::STANDARD) / peak(LadderRung::Stock, Mtu::STANDARD);
    assert!(
        jumbo_gain > std_gain,
        "jumbo {jumbo_gain} vs std {std_gain}"
    );
    assert!(
        std_gain < 1.25,
        "1500-byte gain should be marginal: {std_gain}"
    );
}

#[test]
fn tuning_gains_at_1500_come_from_the_kernel_side() {
    // §3.3: the paper saw 20-25% at 1500 from the UP kernel. In the model
    // the PCI-X bus and the CPU saturate together at 1500, so the UP rung's
    // gain over stock is more modest but must still be visible, and the UP
    // rung must never lose to the stock SMP configuration.
    let stock = peak(LadderRung::Stock, Mtu::STANDARD);
    let up = peak(LadderRung::Uniprocessor, Mtu::STANDARD);
    assert!(
        up > stock * 1.06,
        "UP rung vs stock at 1500: {stock} -> {up}"
    );
}

#[test]
fn stock_jumbo_beats_stock_standard_mtu() {
    // Fig. 3: "Using a larger MTU size produces 40-60% better throughput".
    let gain = peak(LadderRung::Stock, Mtu::JUMBO_9000) / peak(LadderRung::Stock, Mtu::STANDARD);
    assert!(
        (1.3..2.3).contains(&gain),
        "jumbo vs standard stock: {gain}"
    );
}

#[test]
fn cpu_load_drops_with_jumbo_frames() {
    // §3.3: "the CPU load is approximately 0.9 on both hosts [at 1500]
    // while the CPU load is only 0.4 for 9000-byte MTUs."
    let std_cfg = LadderRung::Stock.pe2650_config(Mtu::STANDARD);
    let jumbo_cfg = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    let r_std = nttcp_point(std_cfg, 1448, COUNT, 3);
    let r_jumbo = nttcp_point(jumbo_cfg, 8948, COUNT, 3);
    assert!(
        r_std.rx_cpu_load > r_jumbo.rx_cpu_load,
        "1500-byte load {} must exceed 9000-byte load {}",
        r_std.rx_cpu_load,
        r_jumbo.rx_cpu_load
    );
    assert!(r_std.rx_cpu_load > 0.6, "1500 load {}", r_std.rx_cpu_load);
    assert!(
        r_jumbo.rx_cpu_load < 0.85,
        "9000 load {}",
        r_jumbo.rx_cpu_load
    );
}

#[test]
fn labels_are_figure_ready() {
    for rung in LadderRung::ALL {
        let label = rung.label(Mtu::JUMBO_9000);
        assert!(label.contains("MTU"), "{label}");
        assert!(label.contains("PCI"), "{label}");
    }
}
