//! The fault-injection family end to end: burst-loss shape sensitivity,
//! carrier-flap recovery vs RTT, and the chaos campaign's determinism and
//! seed-reproduction contract.

use tengig::experiments::faults::{
    burst_sweep_report, chaos_campaign, chaos_run, faults_lab, flap_recovery_run_tuned,
    flap_recovery_sweep_report, scaled_wan, BURST_LENGTHS, FLAP_RTTS,
};
use tengig::sweep::SweepRunner;
use tengig_net::Impairments;
use tengig_sim::{Nanos, Sanitizer};

#[test]
fn goodput_degrades_monotonically_with_burst_length() {
    // Fixed 0.3% mean loss, burst lengths bracketing the ~21-frame
    // window: once a burst reaches the window's size there are too few
    // survivors to supply three duplicate ACKs, recovery falls to RTO,
    // and past the window the retransmission probes the same
    // frame-clocked bad state — so the same *amount* of loss costs more
    // goodput the more it clumps (see BURST_LENGTHS for the regime map).
    let (results, report) = burst_sweep_report(
        3e-3,
        &BURST_LENGTHS,
        Nanos::from_secs(2),
        Nanos::from_secs(90),
        2003,
        SweepRunner::new(1),
    );
    for (b, r) in BURST_LENGTHS.iter().zip(&results) {
        eprintln!(
            "burst={b:>4}: {:.3} Gb/s rtx={} rto={} fast={} impair_drops={}",
            r.gbps, r.retransmits, r.timeouts, r.fast_retransmits, r.impair_drops
        );
    }
    for w in results.windows(2) {
        assert!(
            w[1].gbps < w[0].gbps,
            "longer bursts at fixed mean loss must cost goodput: {} then {}",
            w[0].gbps,
            w[1].gbps
        );
    }
    // Every point actually exercised the burst chain.
    for r in &results {
        assert!(r.impair_drops > 0, "the loss process must have fired");
    }
    assert_eq!(report.to_jsonl().lines().count(), BURST_LENGTHS.len() + 1);
}

#[test]
fn flap_recovery_time_grows_with_rtt() {
    // Table 1's trend, measured instead of predicted: after a carrier
    // outage long enough to kill the in-flight window, the time to repair
    // the damage scales with RTT (both the RTO estimate and the window
    // refill are RTT-clocked).
    let (results, _report) = flap_recovery_sweep_report(&FLAP_RTTS, 2003, SweepRunner::new(1));
    for r in &results {
        eprintln!(
            "rtt={:>6}: recovery={} rto={} rtx={} flap_drops={}",
            r.rtt, r.recovery, r.timeouts, r.retransmits, r.flap_drops
        );
        assert!(r.flap_drops > 0, "the outage must have eaten frames");
        assert!(r.timeouts > 0, "an outage spanning the window forces RTO");
    }
    for w in results.windows(2) {
        assert!(
            w[1].recovery > w[0].recovery,
            "recovery must grow with RTT: {} then {}",
            w[0].recovery,
            w[1].recovery
        );
    }
}

#[test]
fn flap_ladder_is_invariant_to_the_rto_ceiling() {
    // The RFC 6298 §5.5 ceiling (rto_max_ms, default 60 s) exists for
    // wedged flows whose backoff would otherwise run away; on the flap
    // ladder the outage is over within a few backoff doublings, so the
    // cap must bind nowhere. Proof: raising the ceiling to an hour
    // changes nothing, at any rung — the ladder's goldens are untouched
    // by the clamp's introduction.
    for &rtt in &FLAP_RTTS {
        let stock = flap_recovery_run_tuned(rtt, 2003, &|s| s);
        let sky = flap_recovery_run_tuned(rtt, 2003, &|s| s.with_rto_max_ms(3_600_000));
        assert_eq!(
            (
                stock.recovery,
                stock.timeouts,
                stock.retransmits,
                stock.flap_drops
            ),
            (sky.recovery, sky.timeouts, sky.retransmits, sky.flap_drops),
            "the 60 s cap must not bind at rtt={rtt}"
        );
    }
    // Positive control: the knob really is plumbed through. Pinching the
    // ceiling down to the 200 ms RTO floor disables backoff entirely, so
    // the outage's retransmission clock speeds up and the run visibly
    // changes — the invariance above is meaningful, not vacuous.
    let stock = flap_recovery_run_tuned(FLAP_RTTS[0], 2003, &|s| s);
    let pinched = flap_recovery_run_tuned(FLAP_RTTS[0], 2003, &|s| s.with_rto_max_ms(200));
    assert_ne!(
        (stock.recovery, stock.timeouts, stock.retransmits),
        (pinched.recovery, pinched.timeouts, pinched.retransmits),
        "a 200 ms ceiling must change the retransmission clock"
    );
}

#[test]
fn chaos_campaign_is_thread_count_invariant_and_survives() {
    // 64 seeded impairment cocktails through the sanitizer: everyone
    // survives, and the campaign report is byte-identical whether the
    // scenarios ran on one worker or four.
    let (rows, report1) = chaos_campaign(64, 77, None, SweepRunner::new(1));
    let (_, report4) = chaos_campaign(64, 77, None, SweepRunner::new(4));
    assert_eq!(
        report1.to_jsonl(),
        report4.to_jsonl(),
        "campaign must be byte-identical across thread counts"
    );
    let failures: Vec<_> = rows.iter().filter(|r| r.outcome.is_err()).collect();
    assert!(
        failures.is_empty(),
        "chaos scenarios failed: {:?}",
        failures
            .iter()
            .map(|r| (r.index, r.seed))
            .collect::<Vec<_>>()
    );
    // The cocktail space was actually explored.
    let ok = |f: fn(&tengig::experiments::faults::ChaosOutcome) -> bool| {
        rows.iter()
            .any(|r| r.outcome.as_ref().map(f).unwrap_or(false))
    };
    assert!(ok(|o| o.impair_drops > 0), "no scenario drew burst loss");
    assert!(ok(|o| o.reordered > 0), "no scenario drew reordering");
    assert!(ok(|o| o.dup_frames > 0), "no scenario drew duplication");
    assert!(ok(|o| o.crc_drops > 0), "no scenario drew corruption");
    assert!(ok(|o| o.timeouts > 0), "no scenario hit an RTO");
}

#[test]
fn total_corruption_starves_the_receiver_without_tripping_the_sanitizer() {
    // `corrupt: 1.0` flips bits in every data frame; the receiving NIC's
    // checksum catches each one and drops it. The byte-conservation
    // ledger must account every corrupted frame (the sanitizer stays
    // quiet), the receiver must never see a payload byte, and the sender
    // must be grinding through RTO-clocked retransmissions of data that
    // can never arrive.
    let mut wan = scaled_wan(Nanos::from_millis(20), 64 << 20);
    wan.impair = Impairments::none().with_corrupt(1.0);
    let (mut lab, mut eng) = faults_lab(&wan, Some(256 << 10), 4242);
    // Arm explicitly: this test is about the invariants, so they must be
    // on in release builds too (the lab default is debug-only).
    eng.install_sanitizer(Sanitizer::new(4242));
    tengig::lab::kick(&mut lab, &mut eng);
    eng.run_until(&mut lab, Nanos::from_secs(2));
    let received = match &lab.flows[0].app {
        tengig::lab::App::Nttcp { rx, .. } => rx.received,
        _ => unreachable!(),
    };
    assert_eq!(received, 0, "no corrupted frame may reach the application");
    assert!(
        lab.hosts[1].rx_crc_drops > 0,
        "the receiving NIC must have discarded corrupted frames"
    );
    let conn = &lab.flows[0].conns[0];
    assert!(
        conn.cc.timeouts > 0 && conn.stats.retransmits > 0,
        "with every data frame corrupted, recovery is RTO-clocked: {} rto, {} rtx",
        conn.cc.timeouts,
        conn.stats.retransmits
    );
    // Undrained check: frames still in flight are fine, but every
    // terminated byte must be in the ledger (delivered or accounted as
    // a checksum drop).
    tengig::lab::check_sanitizer(&lab, &mut eng, false);
}

#[test]
fn chaos_failures_reproduce_from_their_seed() {
    // Deliberately fail scenario 5 through the same panic-capture path a
    // real invariant violation takes, then reproduce it standalone from
    // the seed the campaign reported — the contract behind the
    // `tengig-chaos repro --seed` CLI line.
    let (rows, report) = chaos_campaign(8, 77, Some(5), SweepRunner::new(2));
    let failed: Vec<_> = rows.iter().filter(|r| r.outcome.is_err()).collect();
    assert_eq!(failed.len(), 1);
    let row = failed[0];
    assert_eq!(row.index, 5);
    let text = row.outcome.as_ref().unwrap_err();
    assert!(text.contains(&format!("seed {}", row.seed)));
    // Standalone repro from the reported seed, same failure text.
    let repro = chaos_run(row.seed, true).expect_err("repro must fail identically");
    assert_eq!(&repro, text);
    // The report records the failure without aborting the other rows.
    let jsonl = report.to_jsonl();
    assert!(jsonl.contains("\"survived\":false"));
    assert_eq!(
        jsonl.matches("\"survived\":true").count(),
        7,
        "the other scenarios must still run"
    );
}
