//! The §4 WAN experiments: the record run and its failure modes, plus a
//! simulation validation of Table 1's recovery-time model.

use tengig::analytic::recovery_time;
use tengig::experiments::wan::{record_run, wan_lab};
use tengig::lab;
use tengig_net::WanSpec;
use tengig_sim::{Bandwidth, Nanos};

#[test]
fn record_run_reaches_paper_throughput() {
    let wan = WanSpec::record_run();
    let r = record_run(&wan, None, Nanos::from_secs(3), Nanos::from_secs(2));
    assert!(
        (2.25..2.45).contains(&r.gbps),
        "steady-state {} Gb/s (paper: 2.38)",
        r.gbps
    );
    assert_eq!(r.retransmits, 0, "the record run was loss-free");
    assert_eq!(r.drops, 0);
    assert!(
        r.payload_efficiency > 0.93,
        "payload efficiency {}",
        r.payload_efficiency
    );
    assert!(
        r.terabyte_time < Nanos::from_secs(3600),
        "a terabyte in under an hour, got {}",
        r.terabyte_time
    );
}

#[test]
fn undersized_buffers_are_window_limited() {
    // W/RTT with a 6 MB usable window at 180 ms ≈ 0.27 Gb/s.
    let wan = WanSpec::record_run();
    let r = record_run(
        &wan,
        Some(8 << 20),
        Nanos::from_secs(2),
        Nanos::from_secs(2),
    );
    assert!(r.gbps < 0.8, "undersized buffers still got {} Gb/s", r.gbps);
    assert_eq!(r.retransmits, 0, "window-limited, not loss-limited");
}

#[test]
fn shallow_router_buffers_plus_big_windows_lose_packets() {
    // §3.5.1: "in a WAN environment, setting the socket buffer too large
    // can severely impact performance" — the congestion window overruns
    // the bottleneck queue and AIMD recovery at 180 ms RTT is glacial
    // (Table 1).
    let wan = WanSpec::record_run().with_bottleneck_buffer(6 << 20);
    let r = record_run(
        &wan,
        Some(256 << 20),
        Nanos::from_secs(2),
        Nanos::from_secs(3),
    );
    assert!(r.drops > 0, "overdriven bottleneck must drop");
    assert!(r.retransmits > 0);
    let clean = record_run(
        &WanSpec::record_run(),
        None,
        Nanos::from_secs(2),
        Nanos::from_secs(3),
    );
    assert!(
        r.gbps < clean.gbps * 0.7,
        "loss must hurt: {} vs clean {}",
        r.gbps,
        clean.gbps
    );
}

#[test]
fn slow_start_then_steady_state_timeline() {
    // The flow must still be ramping early and saturated late.
    let wan = WanSpec::record_run();
    let (mut lab, mut eng) = wan_lab(&wan, None);
    lab::kick(&mut lab, &mut eng);
    let received = |lab: &tengig::lab::Lab| match &lab.flows[0].app {
        tengig::lab::App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    eng.run_until(&mut lab, Nanos::from_millis(900));
    let early = received(&lab); // ~5 RTTs of slow start
    eng.run_until(&mut lab, Nanos::from_secs(4));
    let mid = received(&lab);
    eng.run_until(&mut lab, Nanos::from_secs(5));
    let late = received(&lab);
    let early_rate = early as f64 * 8.0 / 0.9e9;
    let late_rate = (late - mid) as f64 * 8.0 / 1e9;
    assert!(
        early_rate < late_rate / 3.0,
        "slow start ({early_rate:.2} Gb/s) must be well below steady state ({late_rate:.2})"
    );
    assert!(
        (2.2..2.5).contains(&late_rate),
        "steady {late_rate:.2} Gb/s"
    );
}

#[test]
fn recovery_time_validated_by_simulation() {
    // Table 1's closed form, checked against the simulator at a scaled-down
    // operating point (10 ms RTT so a recovery episode fits a short run):
    // after an isolated loss, AIMD takes ≈ W/2 RTTs to regain the rate.
    let rtt = Nanos::from_millis(10);
    let mss = 8948u64;
    let rate = Bandwidth::from_gbps_f64(2.4);
    let predicted = recovery_time(rate, rtt, mss);
    // W = 2.4e9 × 0.01 / (8 × 8948) ≈ 335 segments → ≈ 168 RTTs ≈ 1.68 s.
    assert!(
        (1.4..2.0).contains(&predicted.as_secs_f64()),
        "predicted {predicted}"
    );

    // Simulate: same bottleneck, 10 ms RTT, one forced loss via a tiny
    // random-loss probability applied long enough to hit ~one frame.
    let wan = WanSpec {
        prop_svl_chi: Nanos::from_millis(2),
        prop_chi_gva: Nanos::from_millis(3),
        ..WanSpec::record_run()
    };
    // Clean baseline.
    let clean = record_run(&wan, None, Nanos::from_millis(600), Nanos::from_millis(400));
    assert!(clean.gbps > 2.0, "clean baseline {}", clean.gbps);
    // With sparse random loss the average sits visibly below the clean
    // rate: each loss costs ~W/2 RTTs of reduced window (the Table 1
    // mechanism at miniature scale).
    let lossy_spec = wan.with_random_loss(2e-5);
    let lossy = record_run(
        &lossy_spec,
        None,
        Nanos::from_millis(600),
        Nanos::from_secs(3),
    );
    assert!(lossy.retransmits > 0, "loss process must have fired");
    assert!(
        lossy.gbps < clean.gbps * 0.97,
        "AIMD sawtooth must depress the average: {} vs {}",
        lossy.gbps,
        clean.gbps
    );
}
