//! Cross-crate integration: full host-to-host transfers exercising the
//! hardware models, the TCP stack, the NIC, and the network fabric
//! together through the public API.

use tengig::config::{LadderRung, TuningStep};
use tengig::experiments::throughput::nttcp_point;
use tengig::experiments::{b2b_lab, run_to_completion};
use tengig::lab::App;
use tengig_ethernet::Mtu;
use tengig_sim::Nanos;
use tengig_tools::{NttcpReceiver, NttcpSender};

const COUNT: u64 = 1_500;

#[test]
fn bytes_are_conserved_end_to_end() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let payload = 8948u64;
    let app = App::Nttcp {
        tx: NttcpSender::new(payload, COUNT),
        rx: NttcpReceiver::new(payload * COUNT),
    };
    let (mut lab, mut eng) = b2b_lab(cfg, app, 42);
    run_to_completion(&mut lab, &mut eng);
    let App::Nttcp { rx, .. } = &lab.flows[0].app else {
        unreachable!()
    };
    assert_eq!(
        rx.received,
        payload * COUNT,
        "every byte written must arrive"
    );
    let c0 = &lab.flows[0].conns[0];
    let c1 = &lab.flows[0].conns[1];
    assert_eq!(c0.snd_una(), payload * COUNT, "sender fully acknowledged");
    assert_eq!(c1.rcv_nxt(), payload * COUNT, "receiver stream complete");
    assert_eq!(c1.stats.bytes_delivered, payload * COUNT);
    assert_eq!(c0.stats.retransmits, 0, "lossless LAN path");
}

#[test]
fn throughput_is_deterministic() {
    let cfg = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    let a = nttcp_point(cfg, 8948, COUNT, 5);
    let b = nttcp_point(cfg, 8948, COUNT, 5);
    assert_eq!(a.elapsed, b.elapsed, "same seed, same virtual timeline");
    assert_eq!(a.throughput.bps(), b.throughput.bps());
}

#[test]
fn mtu_ordering_matches_paper() {
    // Fully tuned: 8160 ≈ 16000 ≥ 9000 > 1500 (Figs. 4-5).
    let peak = |rung: LadderRung, mtu: Mtu| {
        let cfg = rung.pe2650_config(mtu);
        nttcp_point(cfg, cfg.sysctls.mss(), COUNT, 5)
            .throughput
            .gbps()
    };
    let p1500 = peak(LadderRung::OversizedWindows, Mtu::STANDARD);
    let p9000 = peak(LadderRung::OversizedWindows, Mtu::JUMBO_9000);
    let p8160 = peak(LadderRung::Mtu8160, Mtu::TUNED_8160);
    let p16000 = peak(LadderRung::Mtu16000, Mtu::MAX_INTEL_16000);
    assert!(p9000 > p1500 * 1.5, "9000 ({p9000}) ≫ 1500 ({p1500})");
    assert!(p8160 > p9000 * 0.95, "8160 ({p8160}) ≥ 9000 ({p9000})");
    assert!(p16000 > p9000 * 0.95, "16000 ({p16000}) ≥ 9000 ({p9000})");
}

#[test]
fn interrupt_coalescing_trades_latency_for_cpu() {
    use tengig::experiments::latency::{netpipe_point, without_coalescing};
    let base = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let with = netpipe_point(base, 1, false);
    let without = netpipe_point(without_coalescing(base), 1, false);
    // Fig. 6 vs Fig. 7: ~5 µs shaved by turning coalescing off.
    let delta = with.as_micros_f64() - without.as_micros_f64();
    assert!((4.0..6.0).contains(&delta), "coalescing delta {delta} µs");
    // But the CPU pays: more interrupts per segment for bulk traffic.
    let thr_with = nttcp_point(base, 8948, COUNT, 5);
    let thr_without = nttcp_point(
        base.tuned(TuningStep::Coalescing(Nanos::ZERO)),
        8948,
        COUNT,
        5,
    );
    assert!(
        thr_without.rx_cpu_load >= thr_with.rx_cpu_load * 0.95,
        "disabling coalescing must not reduce CPU load ({} vs {})",
        thr_without.rx_cpu_load,
        thr_with.rx_cpu_load
    );
}

#[test]
fn timestamps_shrink_mss_and_cost_cpu() {
    let on = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let off = on.tuned(TuningStep::Timestamps(false));
    assert_eq!(on.sysctls.mss(), 8108);
    assert_eq!(off.sysctls.mss(), 8120);
    let r_on = nttcp_point(on, 8108, COUNT, 5);
    let r_off = nttcp_point(off, 8120, COUNT, 5);
    // On the PE2650 the CPU has headroom, so the effect is small (§3.5.2:
    // "disabling TCP timestamps yields no increase in throughput").
    let gain = r_off.throughput.gbps() / r_on.throughput.gbps();
    assert!(
        (0.97..1.1).contains(&gain),
        "timestamps effect on PE2650: {gain}"
    );
}

#[test]
fn tracer_reconstructs_packet_paths() {
    use tengig_sim::{Stage, Tracer};
    let cfg = LadderRung::Stock.pe2650_config(Mtu::STANDARD);
    let app = App::Nttcp {
        tx: NttcpSender::new(1448, 50),
        rx: NttcpReceiver::new(1448 * 50),
    };
    let (mut lab, mut eng) = b2b_lab(cfg, app, 9);
    lab.hosts[0].tracer = Tracer::full(4096);
    lab.hosts[1].tracer = Tracer::full(4096);
    run_to_completion(&mut lab, &mut eng);
    // MAGNET-style accounting: every data segment seen at tx and rx.
    assert_eq!(lab.hosts[0].tracer.stage(Stage::TxStack).count, 50);
    assert_eq!(lab.hosts[1].tracer.stage(Stage::RxStack).count, 50);
    assert!(lab.hosts[1].tracer.stage(Stage::Interrupt).count > 0);
    // A mid-stream packet has a complete sender-side path.
    let seq = 25 * 1448;
    let path = lab.hosts[0].tracer.packet_path(seq);
    let stages: Vec<Stage> = path.iter().map(|e| e.stage).collect();
    assert!(stages.contains(&Stage::TxStack));
    assert!(stages.contains(&Stage::TxDma));
    assert!(stages.contains(&Stage::Wire));
}

#[test]
fn iperf_and_nttcp_agree_within_a_few_percent() {
    // §3.2: "Typically, the performance difference between the two is
    // within 2-3%. In no case does Iperf yield results significantly
    // contrary to those of NTTCP."
    use tengig::experiments::throughput::iperf_point;
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let nttcp = nttcp_point(cfg, 8948, 4_000, 5).throughput.gbps();
    let iperf = iperf_point(
        cfg,
        8948,
        Nanos::from_millis(20), // skip slow start, as iperf's long runs do
        Nanos::from_millis(60),
        5,
    );
    let diff = (iperf / nttcp - 1.0).abs();
    assert!(
        diff < 0.08,
        "iperf {iperf} vs nttcp {nttcp}: {:.1}% apart (paper: 2-3%)",
        diff * 100.0
    );
}

#[test]
fn sanitized_sweeps_are_byte_identical_across_threads_and_sanitizer_state() {
    // The runtime sanitizer's contract: it observes (byte-conservation
    // ledger, TCP invariants, causality) but never perturbs — no events,
    // no RNG draws. So every experiment's JSONL must be byte-identical
    // (a) at any sweep-runner thread count and (b) with the sanitizer on
    // or off. All six experiment families run here with reduced grids.
    use tengig::experiments::{anecdotal, latency, multiflow, osbypass, throughput, wan};
    use tengig::sweep::SweepRunner;
    use tengig_net::WanSpec;
    use tengig_sim::sanitizer;

    let jumbo = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let wan_spec = WanSpec::record_run();
    let all_six = |threads: usize| -> Vec<String> {
        let runner = || SweepRunner::new(threads);
        let sec = Nanos::from_secs(1);
        let ms20 = Nanos::from_millis(20);
        vec![
            throughput::throughput_sweep_report(
                jumbo,
                "e2e",
                &[512, 1448, 8948],
                400,
                2003,
                runner(),
            )
            .1
            .to_jsonl(),
            latency::latency_sweep_report(jumbo, "e2e", &[1, 256, 1024], false, 2003, runner())
                .1
                .to_jsonl(),
            wan::buffer_sweep_report(&wan_spec, &[None, Some(8 << 20)], sec, sec, 2003, runner())
                .1
                .to_jsonl(),
            multiflow::peer_sweep_report(
                jumbo,
                &[1, 2],
                multiflow::Direction::IntoTenGbe,
                ms20,
                ms20,
                2003,
                runner(),
            )
            .1
            .to_jsonl(),
            osbypass::mtu_sweep_report(&[Mtu::STANDARD, Mtu::JUMBO_9000], 400, 2003, runner())
                .1
                .to_jsonl(),
            anecdotal::e7505_sweep_report(400, 2003, runner())
                .1
                .to_jsonl(),
        ]
    };

    // Sanitize unconditionally (debug builds already default to on); a
    // violation anywhere panics the scenario and fails the sweep.
    let was_on = sanitizer::default_enabled();
    sanitizer::set_default_enabled(true);
    let serial = all_six(1);
    let parallel = all_six(4);
    sanitizer::set_default_enabled(false);
    let unsanitized = all_six(4);
    sanitizer::set_default_enabled(was_on);

    for (i, name) in [
        "throughput",
        "latency",
        "wan",
        "multiflow",
        "osbypass",
        "anecdotal",
    ]
    .iter()
    .enumerate()
    {
        assert!(!serial[i].is_empty(), "{name} produced no rows");
        assert_eq!(
            serial[i], parallel[i],
            "{name}: 1-thread vs 4-thread JSONL diverged"
        );
        assert_eq!(
            parallel[i], unsanitized[i],
            "{name}: the sanitizer perturbed the simulation"
        );
    }
}

#[test]
fn bidirectional_flows_share_the_host_fairly() {
    // Beyond the paper's unidirectional tests: two opposing bulk flows
    // between the same pair of hosts contend for each host's CPU, memory
    // bus, and PCI-X in both directions.
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let payload = 8948u64;
    let count = 1_500u64;
    let mut lab = tengig::lab::Lab::new();
    let a = lab.add_host(cfg);
    let b = lab.add_host(cfg);
    let path = tengig_net::Path {
        hops: vec![tengig_net::Hop::wire(
            "xover",
            tengig_sim::Bandwidth::from_gbps(10),
            Nanos::from_nanos(50),
        )],
    };
    let mut rng = tengig_sim::SimRng::seeded(77);
    let l_ab = lab.add_link(&path, rng.fork("ab"));
    let l_ba = lab.add_link(&path, rng.fork("ba"));
    for (src, dst, fwd, rev) in [(a, b, l_ab, l_ba), (b, a, l_ba, l_ab)] {
        lab.add_flow(
            src,
            dst,
            vec![fwd],
            vec![rev],
            App::Nttcp {
                tx: NttcpSender::new(payload, count),
                rx: NttcpReceiver::new(payload * count),
            },
        );
    }
    let mut eng = tengig_sim::Engine::new();
    eng.event_limit = 200_000_000;
    tengig::lab::kick(&mut lab, &mut eng);
    eng.run(&mut lab);
    assert!(lab.all_done(), "both directions must complete");
    let rate = |f: usize| {
        let m = lab.flows[f].meas;
        tengig_sim::rate_of(payload * count, m.t_done.unwrap() - m.t_start.unwrap()).gbps()
    };
    let (r0, r1) = (rate(0), rate(1));
    // Fairness: symmetric configuration → symmetric shares.
    let ratio = r0 / r1;
    assert!(
        (0.8..1.25).contains(&ratio),
        "direction fairness: {r0} vs {r1}"
    );
    // Contention: each direction runs below the unidirectional rate. The
    // aggregate matches it rather than exceeding it — this configuration
    // boots a uniprocessor kernel, so both directions' stack work shares
    // one CPU, the binding resource; full duplex cannot create CPU.
    let solo = nttcp_point(cfg, payload, count, 5).throughput.gbps();
    assert!(r0 < solo, "bidirectional share {r0} below solo {solo}");
    assert!(
        r0 + r1 > solo * 0.95,
        "duplexing must not lose aggregate capacity: {} vs solo {solo}",
        r0 + r1
    );
}
