//! Sweep-runner integration tests: the determinism contract (byte-identical
//! reports at any thread count) and panic containment, exercised through a
//! real paper experiment (the Fig. 3/4 NTTCP payload sweep).

use tengig::experiments::throughput::{
    throughput_sweep_report, throughput_sweep_with_metrics, MASTER_SEED,
};
use tengig::{scenarios, Json, LadderRung, Scenario, SweepReport, SweepRunner};
use tengig_ethernet::Mtu;
use tengig_sim::{Nanos, ObsConfig, SimRng};

/// Reduced packet count: sweep shapes converge well before the paper's
/// 32,768 and the suite must stay quick.
const QUICK: u64 = 600;

/// Run the Fig. 3-style stock-TCP payload sweep on a runner with the given
/// thread count and serialize the report.
fn fig3_sweep_bytes(threads: usize) -> String {
    let cfg = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    // Eight payload scenarios spanning the figure's x axis.
    let payloads = [256u64, 512, 1024, 2048, 4096, 6144, 8192, 8948];
    let (series, report) = throughput_sweep_report(
        cfg,
        "9000MTU,stock",
        &payloads,
        QUICK,
        MASTER_SEED,
        SweepRunner::new(threads),
    );
    assert_eq!(series.points.len(), payloads.len());
    assert_eq!(report.rows.len(), payloads.len());
    report.to_jsonl()
}

#[test]
fn paper_sweep_is_byte_identical_across_thread_counts() {
    // The acceptance contract: ≥ 8 scenarios, threads=1 vs threads=4 →
    // byte-identical serialized SweepReports.
    let serial = fig3_sweep_bytes(1);
    let parallel = fig3_sweep_bytes(4);
    assert_eq!(serial, parallel, "sweep must not depend on thread count");

    // And the report is well-formed JSONL: header + one line per scenario.
    let lines: Vec<&str> = serial.lines().collect();
    assert_eq!(lines.len(), 9);
    assert!(lines[0].starts_with(r#"{"sweep":"9000MTU,stock","master_seed":"#));
    for (i, line) in lines[1..].iter().enumerate() {
        assert!(
            line.starts_with(&format!(r#"{{"index":{i},"#)),
            "row {i} out of order: {line}"
        );
        assert!(
            line.contains(r#""mbps":"#),
            "row {i} missing measurement: {line}"
        );
    }
}

/// The metrics side-channel obeys the same contract as the report it rides
/// alongside: byte-identical at any thread count, and the primary report's
/// bytes are untouched by enabling it. (That the tracer's sampling RNG is
/// plumbed from the scenario seed is covered in `tests/obs.rs` — the
/// timelines themselves sample deterministic state, so a back-to-back
/// sweep's sidecar is legitimately seed-stable.)
#[test]
fn metrics_sidecar_is_byte_identical_across_thread_counts() {
    let cfg = LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000);
    let payloads = [512u64, 1448, 8948];
    let obs = ObsConfig {
        sample_interval: Nanos::from_micros(50),
        ring_capacity: 64,
        sample_every: 4,
    };
    let sweep = |threads: usize, master_seed: u64| {
        let (_, report, sidecar) = throughput_sweep_with_metrics(
            cfg,
            "obs",
            &payloads,
            QUICK,
            master_seed,
            SweepRunner::new(threads),
            &obs,
        );
        (report.to_jsonl(), sidecar.concatenated())
    };
    let (report_1, sidecar_1) = sweep(1, MASTER_SEED);
    let (report_4, sidecar_4) = sweep(4, MASTER_SEED);
    assert_eq!(sidecar_1, sidecar_4, "sidecar must not depend on threads");
    assert_eq!(report_1, report_4);

    // Obs on vs off: the primary report bytes are identical.
    let (_, plain) = throughput_sweep_report(
        cfg,
        "obs",
        &payloads,
        QUICK,
        MASTER_SEED,
        SweepRunner::new(4),
    );
    assert_eq!(plain.to_jsonl(), report_4, "obs must be a pure observer");

    // The sidecar itself is well-formed: one timelines blob per scenario,
    // each parseable back into the exact same bytes.
    let (_, _, sidecar) = throughput_sweep_with_metrics(
        cfg,
        "obs",
        &payloads,
        QUICK,
        MASTER_SEED,
        SweepRunner::new(2),
        &obs,
    );
    assert_eq!(sidecar.runs.len(), payloads.len());
    for (_, _, jsonl) in &sidecar.runs {
        let tl = tengig_sim::Timelines::from_jsonl(jsonl).expect("sidecar parses");
        assert_eq!(&tl.to_jsonl(), jsonl);
    }
}

#[test]
fn scenario_seeds_follow_the_master_seed_discipline() {
    let grid = scenarios(77, 0..10u64, |i| format!("s{i}"));
    for (i, sc) in grid.iter().enumerate() {
        assert_eq!(sc.seed, SimRng::scenario_seed(77, i as u64));
    }
    // A different master seed moves every scenario seed.
    let other = scenarios(78, 0..10u64, |i| format!("s{i}"));
    assert!(grid.iter().zip(&other).all(|(a, b)| a.seed != b.seed));
}

#[test]
fn runner_output_is_keyed_by_index_not_arrival_order() {
    // Scenarios with wildly uneven runtimes: late indices finish first on
    // a multi-thread pool, but the output order must not care.
    let grid = scenarios(5, (0..16u64).rev(), |i| format!("work={i}"));
    let run = |threads: usize| {
        SweepRunner::new(threads)
            .run(&grid, |sc| {
                // Busy work proportional to the input so completion order
                // differs from index order.
                let mut acc = sc.seed;
                for _ in 0..sc.input * 10_000 {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                }
                (sc.index, acc)
            })
            .expect("no panics")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    for (i, (idx, _)) in serial.iter().enumerate() {
        assert_eq!(*idx, i);
    }
}

#[test]
fn panicking_scenario_surfaces_as_error_without_deadlock() {
    let grid: Vec<Scenario<u64>> = scenarios(9, 0..12u64, |i| format!("p{i}"));
    let err = SweepRunner::new(4)
        .run(&grid, |sc| {
            if sc.input == 5 {
                panic!("scenario {} exploded", sc.input);
            }
            sc.input * 2
        })
        .expect_err("the panic must surface as an error");
    assert_eq!(err.index, 5);
    assert_eq!(err.label, "p5");
    assert!(
        err.message.contains("exploded"),
        "payload lost: {}",
        err.message
    );
    // The runner is still usable afterwards (the pool did not wedge).
    let ok = SweepRunner::new(4)
        .run(&grid, |sc| sc.input)
        .expect("clean run");
    assert_eq!(ok.len(), 12);
}

#[test]
fn report_serialization_is_deterministic_for_equal_content() {
    let build = || {
        let mut r = SweepReport::new("demo", 3);
        for i in 0..4u64 {
            r.push_row(
                i as usize,
                format!("row{i}"),
                SimRng::scenario_seed(3, i),
                vec![
                    ("value".to_string(), Json::F64(i as f64 * 0.1)),
                    ("count".to_string(), Json::U64(i)),
                ],
            );
        }
        r.to_jsonl()
    };
    assert_eq!(build(), build());
}
