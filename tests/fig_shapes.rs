//! Figure-shape fidelity: the qualitative features of Figs. 3-7 that the
//! paper's analysis explains must emerge from the simulation.

use tengig::config::LadderRung;
use tengig::experiments::latency::{latency_sweep, netpipe_point, without_coalescing};
use tengig::experiments::throughput::throughput_sweep;
use tengig_ethernet::Mtu;

const COUNT: u64 = 1_200;

#[test]
fn fig3_throughput_rises_with_payload() {
    // Both stock curves climb from small payloads toward their peaks.
    let payloads: Vec<u64> = vec![256, 512, 1024, 1448, 2048, 4096, 8192, 8948];
    let s = throughput_sweep(
        LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
        "9000MTU,SMP,512PCI",
        &payloads,
        COUNT,
    );
    let small = s.at(512.0).unwrap();
    let big = s.at(8948.0).unwrap();
    assert!(big > small * 2.0, "payload scaling: {small} -> {big}");
}

#[test]
fn fig3_jumbo_dip_below_the_mss() {
    // The 9000-MTU stock curve dips for payloads just below the MSS
    // (7436-8948 in the paper): sub-MSS segments waste packet-counted
    // window slots while the default buffers are already tight.
    let payloads: Vec<u64> = (6_400..=8_948).step_by(128).chain([8_948]).collect();
    let s = throughput_sweep(
        LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
        "stock",
        &payloads,
        COUNT,
    );
    let at_mss = s.at(8_948.0).unwrap();
    let dip = s.min_in(7_436.0, 8_947.0).unwrap();
    assert!(
        dip < at_mss * 0.93,
        "a marked dip below the MSS: dip {dip} vs peak {at_mss}"
    );
}

#[test]
fn fig4_oversized_windows_fill_the_dip() {
    // §3.3: "oversizing the TCP windows did eliminate the marked dip".
    let payloads: Vec<u64> = (6_400..=8_948).step_by(256).chain([8_948]).collect();
    let stock = throughput_sweep(
        LadderRung::Stock.pe2650_config(Mtu::JUMBO_9000),
        "stock",
        &payloads,
        COUNT,
    );
    let tuned = throughput_sweep(
        LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000),
        "tuned",
        &payloads,
        COUNT,
    );
    let stock_dip = stock.min_in(7_436.0, 8_947.0).unwrap() / stock.at(8_948.0).unwrap();
    let tuned_dip = tuned.min_in(7_436.0, 8_947.0).unwrap() / tuned.at(8_948.0).unwrap();
    assert!(
        tuned_dip > stock_dip,
        "oversized windows shallow the dip: stock {stock_dip:.3} vs tuned {tuned_dip:.3}"
    );
}

#[test]
fn fig5_16000_has_higher_average_than_8160_similar_peak() {
    // §3.3: "the peak throughput [at 16000] is virtually identical to the
    // 8160-byte MTU case. However, the average throughput with the larger
    // MTU is clearly much higher" — because payloads between 8108 and
    // 15948 still fit one segment.
    let payloads: Vec<u64> = (2_048..=15_948)
        .step_by(1_024)
        .chain([8_108, 15_948])
        .collect();
    let mut payloads = payloads;
    payloads.sort_unstable();
    let m8160 = throughput_sweep(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        "8160",
        &payloads,
        COUNT,
    );
    let m16000 = throughput_sweep(
        LadderRung::Mtu16000.pe2650_config(Mtu::MAX_INTEL_16000),
        "16000",
        &payloads,
        COUNT,
    );
    let peak_ratio = m16000.peak() / m8160.peak();
    assert!(
        (0.9..1.25).contains(&peak_ratio),
        "peaks similar: {peak_ratio}"
    );
    // Direction holds (payloads in 8109-15948 ride in one segment instead
    // of two); the magnitude is muted in the model because the memory-bus
    // ceiling flattens both curves near the peak — see EXPERIMENTS.md.
    assert!(
        m16000.mean() > m8160.mean(),
        "16000 mean {} must beat 8160 mean {}",
        m16000.mean(),
        m8160.mean()
    );
}

#[test]
fn fig6_latency_steps_and_grows_about_20pct_to_1kb() {
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let payloads: Vec<u64> = vec![1, 64, 128, 256, 512, 768, 1024];
    let b2b = latency_sweep(cfg, "b2b", &payloads, false);
    // Monotone non-decreasing.
    for w in b2b.points.windows(2) {
        assert!(w[1].y >= w[0].y - 0.05, "latency must not shrink: {w:?}");
    }
    let growth = b2b.at(1024.0).unwrap() / b2b.at(1.0).unwrap();
    assert!(
        (1.1..1.45).contains(&growth),
        "1B→1KB growth {growth} (paper ~1.2)"
    );
    // Roughly linear: each 256-byte increment adds a similar amount
    // (the per-byte slope dominates; the 64-byte copy quanta are tested
    // at unit level in `tengig_hw::cpu`).
    let d1 = b2b.at(512.0).unwrap() - b2b.at(256.0).unwrap();
    let d2 = b2b.at(1024.0).unwrap() - b2b.at(768.0).unwrap();
    assert!((d1 - d2).abs() < 1.0, "linear growth: {d1} vs {d2}");
}

#[test]
fn fig7_coalescing_off_shifts_the_whole_curve_down() {
    let base = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    for payload in [1u64, 512, 1024] {
        let on = netpipe_point(base, payload, false).as_micros_f64();
        let off = netpipe_point(without_coalescing(base), payload, false).as_micros_f64();
        let delta = on - off;
        assert!(
            (4.0..6.0).contains(&delta),
            "coalescing delta at {payload} B: {delta} µs (expected ~5)"
        );
    }
}

#[test]
fn switch_adds_constant_latency_across_payloads() {
    // Fig. 6's two curves stay ~6 µs apart over the whole payload range.
    let cfg = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    for payload in [1u64, 512, 1024] {
        let b2b = netpipe_point(cfg, payload, false).as_micros_f64();
        let sw = netpipe_point(cfg, payload, true).as_micros_f64();
        let delta = sw - b2b;
        assert!(
            (4.5..8.0).contains(&delta),
            "switch delta at {payload} B: {delta} µs"
        );
    }
}
