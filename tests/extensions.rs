//! Extension features the paper discusses but could not measure on its
//! 2.4 kernels: NAPI, Nagle/write-coalescing, window scaling on the WAN,
//! TSO, and the §5 OS-bypass projection.

use tengig::config::{LadderRung, TuningStep};
use tengig::experiments::osbypass;
use tengig::experiments::throughput::nttcp_point;
use tengig::experiments::wan::{record_run, wan_host};
use tengig_ethernet::Mtu;
use tengig_net::WanSpec;
use tengig_sim::Nanos;

#[test]
fn napi_reduces_receive_cpu_load() {
    // §3.3: NAPI "decreases the load that the 10GbE card places on the
    // receiving host. (In systems where the host CPU is a bottleneck, it
    // would also result in higher bandwidth.)"
    let base = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let mut napi = base;
    napi.sysctls = napi.sysctls.with_napi(true);
    let old = nttcp_point(base, 8948, 1_500, 3);
    let new = nttcp_point(napi, 8948, 1_500, 3);
    assert!(
        new.throughput.gbps() >= old.throughput.gbps(),
        "NAPI must not hurt throughput: {} -> {}",
        old.throughput.gbps(),
        new.throughput.gbps()
    );
    // The per-segment interrupt-context saving shows as CPU relief (the
    // memory bus co-binds here, so the bandwidth gain is marginal — the
    // paper's parenthetical applies only when the CPU is *the* bottleneck).
    assert!(
        new.rx_cpu_load < old.rx_cpu_load,
        "NAPI must relieve the receive CPU: {} -> {}",
        old.rx_cpu_load,
        new.rx_cpu_load
    );
}

#[test]
fn nagle_coalescing_removes_payload_dependence() {
    // With push-per-write (NTTCP semantics, the paper's curves), small
    // writes mean small segments and low throughput. With stream
    // coalescing the same byte stream rides in full-MSS segments.
    let push = LadderRung::OversizedWindows.pe2650_config(Mtu::JUMBO_9000);
    let mut coalesce = push;
    coalesce.sysctls = coalesce.sysctls.with_nodelay(false);
    let payload = 2_048u64; // well below the 8948 MSS
    let r_push = nttcp_point(push, payload, 4_000, 3);
    let r_coal = nttcp_point(coalesce, payload, 4_000, 3);
    assert!(
        r_coal.throughput.gbps() > r_push.throughput.gbps() * 1.3,
        "coalescing small writes must help: {} -> {}",
        r_push.throughput.gbps(),
        r_coal.throughput.gbps()
    );
    // And it approaches the full-MSS rate of the push configuration.
    let r_mss = nttcp_point(push, 8948, 4_000, 3);
    assert!(
        r_coal.throughput.gbps() > r_mss.throughput.gbps() * 0.75,
        "coalesced small writes {} vs full-MSS writes {}",
        r_coal.throughput.gbps(),
        r_mss.throughput.gbps()
    );
}

#[test]
fn wan_without_window_scaling_collapses() {
    // RFC 1323 window scaling is what makes the record possible at all:
    // without it the advertised window caps at 65535 bytes and the
    // 180 ms-RTT path carries at most ~2.9 Mb/s.
    let wan = WanSpec::record_run();
    let mut cfg = wan_host(&wan, None);
    cfg.sysctls.window_scaling = false;
    // Build the lab manually with the modified endpoint config.
    let mut lab = tengig::lab::Lab::new();
    let a = lab.add_host(cfg);
    let b = lab.add_host(cfg);
    let mut rng = tengig_sim::SimRng::seeded(11);
    let fwd = lab.add_link(&wan.forward_path(), rng.fork("f"));
    let rev = lab.add_link(&wan.reverse_path(), rng.fork("r"));
    let payload = cfg.sysctls.mss();
    lab.add_flow(
        a,
        b,
        vec![fwd],
        vec![rev],
        tengig::lab::App::Nttcp {
            tx: tengig_tools::NttcpSender::new(payload, 1_000_000),
            rx: tengig_tools::NttcpReceiver::new(payload * 1_000_000),
        },
    );
    let mut eng = tengig_sim::Engine::new();
    eng.event_limit = 100_000_000;
    tengig::lab::kick(&mut lab, &mut eng);
    eng.run_until(&mut lab, Nanos::from_secs(2));
    let received = match &lab.flows[0].app {
        tengig::lab::App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    eng.run_until(&mut lab, Nanos::from_secs(4));
    let received2 = match &lab.flows[0].app {
        tengig::lab::App::Nttcp { rx, .. } => rx.received,
        _ => 0,
    };
    let gbps = (received2 - received) as f64 * 8.0 / 2e9;
    assert!(
        gbps < 0.01,
        "without window scaling the WAN must collapse to ~3 Mb/s, got {gbps} Gb/s"
    );
    assert!(
        gbps > 0.0005,
        "but it must still make progress: {gbps} Gb/s"
    );
}

#[test]
fn tso_relieves_the_sender_cpu() {
    // §3.3: "the implementation of TSO should reduce the CPU load on
    // transmitting systems".
    let off = LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160);
    let mut on = off;
    on.nic = on.nic.with_tso(true);
    let r_off = nttcp_point(off, 8108, 2_000, 3);
    let r_on = nttcp_point(on, 8108, 2_000, 3);
    assert!(
        r_on.tx_cpu_load < r_off.tx_cpu_load * 0.95,
        "TSO must cut sender CPU: {} -> {}",
        r_off.tx_cpu_load,
        r_on.tx_cpu_load
    );
    assert!(
        r_on.throughput.gbps() >= r_off.throughput.gbps() * 0.98,
        "TSO must not hurt throughput: {} -> {}",
        r_off.throughput.gbps(),
        r_on.throughput.gbps()
    );
}

#[test]
fn osbypass_projection_matches_section5() {
    // "throughput approaching 8 Gb/s, end-to-end latencies below 10 µs,
    // and a CPU load approaching zero".
    let r = osbypass::throughput(Mtu::MAX_INTEL_16000, 2_000);
    assert!(r.gbps > 6.5, "throughput {}", r.gbps);
    assert!(r.latency < Nanos::from_micros(10), "latency {}", r.latency);
    assert!(r.cpu_load < 0.2, "cpu load {}", r.cpu_load);
    // The projection beats every TCP configuration in the repository.
    let best_tcp = nttcp_point(
        LadderRung::Mtu8160.pe2650_config(Mtu::TUNED_8160),
        8108,
        1_500,
        3,
    )
    .throughput
    .gbps();
    assert!(
        r.gbps > best_tcp * 1.4,
        "bypass {} vs best TCP {}",
        r.gbps,
        best_tcp
    );
}

#[test]
fn coalescing_and_timestamps_compose_with_other_knobs() {
    // Sanity: every TuningStep composes without panicking and produces a
    // runnable configuration.
    let cfg = LadderRung::Stock
        .pe2650_config(Mtu::STANDARD)
        .tuned(TuningStep::Mmrbc(2048))
        .tuned(TuningStep::Buffers(128 * 1024))
        .tuned(TuningStep::Coalescing(Nanos::from_micros(10)))
        .tuned(TuningStep::Timestamps(false))
        .tuned(TuningStep::Mtu(Mtu::JUMBO_9000))
        .tuned(TuningStep::Txqueuelen(1_000));
    let r = nttcp_point(cfg, cfg.sysctls.mss(), 800, 3);
    assert!(r.throughput.gbps() > 1.0);
}

#[test]
fn record_run_is_robust_to_moderate_router_buffers() {
    // The record needs the bottleneck queue to absorb slow-start overshoot
    // (~half a BDP of transient queue); 48 MB suffices.
    let wan = WanSpec::record_run().with_bottleneck_buffer(48 << 20);
    let r = record_run(&wan, None, Nanos::from_secs(3), Nanos::from_secs(1));
    assert!(r.gbps > 2.2, "throughput {}", r.gbps);
    assert_eq!(r.drops, 0);
}
